// dgs_cli — command-line front end for the DGS library.
//
//   dgs_cli gen-network <tle-out> <stations-csv-out> [n_sats] [n_stations]
//   dgs_cli passes <tle-file> <lat_deg> <lon_deg> [hours]
//   dgs_cli budget <elevation_deg> <rain_mm_h> [freq_ghz] [dish_m]
//   dgs_cli simulate <tle-file> <stations-csv> [hours]
//
// The files produced by gen-network round-trip through the standard TLE
// and CSV formats, so real catalogs (Celestrak exports, SatNOGS dumps)
// drop in directly.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fstream>

#include "examples/cli_common.h"
#include "src/core/dgs.h"
#include "src/core/report.h"
#include "src/groundseg/io.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

using namespace dgs;

util::Epoch now_epoch() {
  // A fixed reference keeps runs reproducible; real deployments would use
  // wall-clock UTC.
  return util::Epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
}

int cmd_gen_network(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: dgs_cli gen-network <tle-out> <stations-csv-out> "
                 "[n_sats] [n_stations]\n");
    return 2;
  }
  groundseg::NetworkOptions opts;
  if (argc > 4) opts.num_satellites = std::atoi(argv[4]);
  if (argc > 5) opts.num_stations = std::atoi(argv[5]);
  if (opts.num_satellites <= 0 || opts.num_stations <= 0) {
    std::fprintf(stderr, "error: counts must be positive\n");
    return 2;
  }
  const auto sats = groundseg::generate_constellation(opts, now_epoch());
  std::vector<orbit::Tle> catalog;
  for (const auto& s : sats) catalog.push_back(s.tle);
  groundseg::save_tle_file(argv[2], catalog);
  groundseg::save_station_file(argv[3],
                               groundseg::generate_dgs_stations(opts));
  std::printf("wrote %zu TLEs to %s and %d stations to %s\n", catalog.size(),
              argv[2], opts.num_stations, argv[3]);
  return 0;
}

int cmd_passes(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: dgs_cli passes <tle-file> <lat_deg> <lon_deg> "
                 "[hours]\n");
    return 2;
  }
  const auto catalog = groundseg::load_tle_file(argv[2]);
  const orbit::Geodetic site{util::deg2rad(std::atof(argv[3])),
                             util::deg2rad(std::atof(argv[4])), 0.0};
  const double hours = argc > 5 ? std::atof(argv[5]) : 24.0;
  const util::Epoch start = now_epoch();

  std::printf("%-14s %-21s %9s %8s\n", "satellite", "AOS", "duration",
              "max el");
  int total = 0;
  for (const auto& tle : catalog) {
    const orbit::Sgp4 prop(tle);
    for (const auto& p : orbit::predict_passes(
             prop, site, start, start.plus_seconds(hours * 3600.0))) {
      std::printf("%-14s %-21s %6.1f min %5.1f deg\n",
                  tle.name.empty() ? std::to_string(tle.satnum).c_str()
                                   : tle.name.c_str(),
                  p.aos.to_string().c_str(), p.duration_seconds() / 60.0,
                  util::rad2deg(p.max_elevation_rad));
      ++total;
    }
  }
  std::printf("%d passes in %.1f h\n", total, hours);
  return 0;
}

int cmd_budget(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: dgs_cli budget <elevation_deg> <rain_mm_h> "
                 "[freq_ghz] [dish_m]\n");
    return 2;
  }
  const double el_deg = std::atof(argv[2]);
  if (el_deg <= 0.0 || el_deg > 90.0) {
    std::fprintf(stderr, "error: elevation must be in (0, 90]\n");
    return 2;
  }
  link::RadioSpec radio;
  if (argc > 4) radio.frequency_hz = std::atof(argv[4]) * 1e9;
  link::ReceiveSystem rx;
  if (argc > 5) rx.dish_diameter_m = std::atof(argv[5]);

  const double el = util::deg2rad(el_deg);
  const double re = 6371.0, h = 550.0;
  link::PathConditions path;
  path.range_km =
      std::sqrt((re + h) * (re + h) - re * re * std::cos(el) * std::cos(el)) -
      re * std::sin(el);
  path.elevation_rad = el;
  path.site_latitude_rad = util::deg2rad(45.0);
  path.rain_rate_mm_h = std::atof(argv[3]);
  path.cloud_liquid_kg_m2 = path.rain_rate_mm_h > 0.0 ? 1.0 : 0.2;

  const link::LinkBudget b = link::evaluate_link(radio, rx, path);
  std::printf("550 km orbit, elevation %.1f deg -> range %.0f km\n", el_deg,
              path.range_km);
  std::printf("FSPL %.1f dB | rain %.2f dB | cloud %.2f dB | gas %.2f dB\n",
              b.fspl_db, b.rain_db, b.cloud_db, b.gas_db);
  std::printf("G/T %.1f dB/K | C/N0 %.1f dBHz | Es/N0 %.2f dB\n",
              b.g_over_t_db, b.cn0_dbhz, b.esn0_db);
  if (b.closes()) {
    std::printf("MODCOD %s -> %.1f Mbps\n", b.modcod->name.data(),
                b.data_rate_bps / 1e6);
  } else {
    std::printf("link does not close\n");
  }
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: dgs_cli simulate <tle-file> <stations-csv> "
                 "[hours] [--json <file>] [--csv <file>]\n"
                 "       [--metrics-out <file>] [--trace-out <file>] "
                 "[--events-out <file>]\n"
                 "       [--stations-subset <file>]\n"
                 "       [--fault-profile <%s>] [--fault-seed <n>]\n",
                 faults::profile_names());
    return 2;
  }
  const auto catalog = groundseg::load_tle_file(argv[2]);
  const auto stations = groundseg::load_station_file(argv[3]);
  if (catalog.empty() || stations.empty()) {
    std::fprintf(stderr, "error: empty catalog or station list\n");
    return 2;
  }
  std::vector<groundseg::SatelliteConfig> sats;
  for (const auto& tle : catalog) {
    groundseg::SatelliteConfig sc;
    sc.id = static_cast<int>(sats.size());
    sc.name = tle.name;
    sc.tle = tle;
    sats.push_back(std::move(sc));
  }

  core::SimulationOptions opts;
  opts.start = now_epoch();
  examples::CommonFlags flags;
  for (int i = 4; i < argc; ++i) {
    if (examples::parse_common_flag(argc, argv, &i, &flags)) continue;
    opts.duration_hours = std::atof(argv[i]);
  }
  opts.collect_timeseries = !flags.csv_out.empty();
  const int effective_stations = examples::apply_common_flags(
      flags, static_cast<int>(stations.size()), &opts);

  // One documented validation entry point: every option constraint is
  // checked here, with the offending field named in the error.
  std::vector<int> station_ids;
  station_ids.reserve(stations.size());
  for (const auto& gs : stations) station_ids.push_back(gs.id);
  if (const auto err = opts.validate(effective_stations, station_ids)) {
    std::fprintf(stderr, "error: SimulationOptions.%s: %s\n",
                 err->field.c_str(), err->message.c_str());
    return 2;
  }

  // Observability sinks (DESIGN.md §10): Prometheus text exposition,
  // Chrome-trace JSON, and the JSONL event log.
  obs::Registry registry;
  if (!flags.metrics_out.empty()) opts.metrics = &registry;
  std::ofstream events_out;
  obs::EventLog event_log;
  if (!flags.events_out.empty()) {
    events_out.open(flags.events_out);
    event_log = obs::EventLog(&events_out);
    opts.events = &event_log;
  }
  if (!flags.trace_out.empty()) obs::set_trace_enabled(true);

  weather::SyntheticWeatherProvider wx(42, opts.start,
                                       opts.duration_hours + 1.0);
  const core::SimulationResult r =
      core::Simulator(sats, stations, &wx, opts).run();

  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    registry.write_prometheus(out);
    std::printf("wrote %zu metric series to %s\n", registry.series_count(),
                flags.metrics_out.c_str());
  }
  if (!flags.trace_out.empty()) {
    std::ofstream out(flags.trace_out);
    obs::write_chrome_trace(out);
    std::printf("wrote %zu trace spans to %s\n", obs::trace_span_count(),
                flags.trace_out.c_str());
  }
  if (!flags.events_out.empty()) {
    events_out.close();
    std::printf("wrote event log to %s\n", flags.events_out.c_str());
  }
  if (!flags.json_out.empty()) {
    std::ofstream out(flags.json_out);
    core::write_summary_json(out, r);
    std::printf("wrote summary to %s\n", flags.json_out.c_str());
  }
  if (!flags.csv_out.empty()) {
    std::ofstream out(flags.csv_out);
    core::write_timeseries_csv(out, r);
    std::printf("wrote timeseries to %s\n", flags.csv_out.c_str());
  }

  if (!flags.stations_subset.empty()) {
    std::printf("station subset: %zu of %zu stations (%s)\n",
                opts.station_subset.size(), stations.size(),
                flags.stations_subset.c_str());
  }
  std::printf("%zu satellites x %d stations, %.1f h\n", sats.size(),
              effective_stations, opts.duration_hours);
  std::printf("delivered %.2f TB of %.2f TB generated (%.1f%%)\n",
              r.total_delivered_bytes / 1e12, r.total_generated_bytes / 1e12,
              100.0 * r.delivered_fraction());
  std::printf("latency: %s\n",
              util::summary_row(r.latency_minutes, "min").c_str());
  std::printf("backlog: %s\n", util::summary_row(r.backlog_gb, "GB").c_str());
  if (!r.ack_delay_minutes.empty()) {
    std::printf("ack delay: %s\n",
                util::summary_row(r.ack_delay_minutes, "min").c_str());
  }
  if (!opts.faults.empty()) {
    std::printf("faults (%s, seed %llu): %.2f GB lost to outages, "
                "%lld ack retries, %lld replans, %lld plan-upload "
                "failures\n",
                flags.fault_profile.c_str(),
                static_cast<unsigned long long>(flags.fault_seed),
                r.outage_lost_bytes / 1e9,
                static_cast<long long>(r.ack_retries),
                static_cast<long long>(r.replans),
                static_cast<long long>(r.plan_upload_failures));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dgs_cli <gen-network|passes|budget|simulate> ...\n");
    return 2;
  }
  try {
    if (std::strcmp(argv[1], "gen-network") == 0) {
      return cmd_gen_network(argc, argv);
    }
    if (std::strcmp(argv[1], "passes") == 0) return cmd_passes(argc, argv);
    if (std::strcmp(argv[1], "budget") == 0) return cmd_budget(argc, argv);
    if (std::strcmp(argv[1], "simulate") == 0) {
      return cmd_simulate(argc, argv);
    }
    std::fprintf(stderr, "unknown command: %s\n", argv[1]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
