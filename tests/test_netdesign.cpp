// Network-design optimizer (DESIGN.md §15): lazy-greedy invariants on
// hand-built instances, iteration-order independence, thread-count and
// rerun determinism of the front artifact, schema round-trips through the
// core validator, and the --stations-subset plumbing end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/run_artifact.h"
#include "src/core/simulator.h"
#include "src/groundseg/io.h"
#include "src/netdesign/pareto.h"
#include "src/weather/synthetic.h"

namespace dgs::netdesign {
namespace {

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
constexpr std::uint64_t kWeatherSeed = 42;

/// One candidate covering `values[j]` at cell (sat 0, first_step + j).
CandidateEntry entry(int id, double cost, std::vector<double> values,
                     int first_step = 0) {
  CandidateEntry e;
  e.candidate = id;
  e.cost = cost;
  e.availability = 1.0;
  PassValue pass;
  pass.sat = 0;
  pass.first_step = first_step;
  pass.step_values = std::move(values);
  e.passes.push_back(std::move(pass));
  return e;
}

/// Hand-built 1-sat instance small enough to brute-force.
ValueTable tiny_table() {
  ValueTable t;
  t.num_sats = 1;
  t.num_steps = 6;
  t.step_seconds = 60.0;
  t.candidates.push_back(entry(0, 10.0, {5.0, 5.0}, 0));   // cells 0,1
  t.candidates.push_back(entry(1, 4.0, {6.0, 6.0}, 2));    // cells 2,3
  t.candidates.push_back(entry(2, 4.0, {3.0}, 0));         // cell 0
  t.candidates.push_back(entry(3, 7.0, {2.0, 2.0}, 4));    // cells 4,5
  return t;
}

/// Brute-force weighted max-coverage objective of a subset.
double brute_objective(const ValueTable& t, const std::vector<int>& subset) {
  std::vector<double> best(
      static_cast<std::size_t>(t.num_sats * t.num_steps), 0.0);
  for (const CandidateEntry& c : t.candidates) {
    if (std::find(subset.begin(), subset.end(), c.candidate) ==
        subset.end()) {
      continue;
    }
    for (const PassValue& p : c.passes) {
      for (std::size_t j = 0; j < p.step_values.size(); ++j) {
        auto& cell = best[static_cast<std::size_t>(
            p.sat * t.num_steps + p.first_step) + j];
        cell = std::max(cell, p.step_values[j]);
      }
    }
  }
  double total = 0.0;
  for (double v : best) total += v;
  return total;
}

TEST(LazyGreedy, FindsKnownOptimumOnTinyInstance) {
  const ValueTable t = tiny_table();
  GreedyOptions opts;
  opts.k = 2;
  const GreedyResult r = lazy_greedy(t, opts);

  // Brute-force the best pair: disjoint high-value passes win, so greedy
  // (optimal on this instance) must match.
  double best = 0.0;
  for (std::size_t a = 0; a < t.candidates.size(); ++a) {
    for (std::size_t b = a + 1; b < t.candidates.size(); ++b) {
      best = std::max(best, brute_objective(t, {t.candidates[a].candidate,
                                               t.candidates[b].candidate}));
    }
  }
  EXPECT_DOUBLE_EQ(r.objective_gb, best);
  ASSERT_EQ(r.selected.size(), 2u);
  // Pick order: the 12 GB candidate first, then the 10 GB one.
  EXPECT_EQ(r.selected[0], 1);
  EXPECT_EQ(r.selected[1], 0);
  EXPECT_DOUBLE_EQ(r.total_cost, 14.0);
}

TEST(LazyGreedy, GainsNonIncreasingAndSumToObjective) {
  const ValueTable t = tiny_table();
  GreedyOptions opts;
  opts.k = 4;
  const GreedyResult r = lazy_greedy(t, opts);
  ASSERT_EQ(r.gains.size(), r.selected.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < r.gains.size(); ++i) {
    sum += r.gains[i];
    if (i > 0) {
      EXPECT_LE(r.gains[i], r.gains[i - 1] + 1e-12);
    }
  }
  EXPECT_NEAR(sum, r.objective_gb, 1e-9);
  EXPECT_DOUBLE_EQ(r.objective_gb, brute_objective(t, r.selected));
}

TEST(LazyGreedy, SelectionIndependentOfCandidateOrder) {
  ValueTable t = tiny_table();
  GreedyOptions opts;
  opts.k = 3;
  const GreedyResult forward = lazy_greedy(t, opts);
  std::reverse(t.candidates.begin(), t.candidates.end());
  const GreedyResult reversed = lazy_greedy(t, opts);
  std::rotate(t.candidates.begin(), t.candidates.begin() + 1,
              t.candidates.end());
  const GreedyResult rotated = lazy_greedy(t, opts);
  EXPECT_EQ(forward.selected, reversed.selected);
  EXPECT_EQ(forward.selected, rotated.selected);
  EXPECT_EQ(forward.gains, reversed.gains);
}

TEST(LazyGreedy, TiesBreakTowardSmallerCandidateId) {
  ValueTable t;
  t.num_sats = 1;
  t.num_steps = 4;
  t.step_seconds = 60.0;
  // Identical standalone values on disjoint cells: ids decide.
  t.candidates.push_back(entry(7, 1.0, {4.0}, 0));
  t.candidates.push_back(entry(3, 1.0, {4.0}, 1));
  GreedyOptions opts;
  opts.k = 2;
  const GreedyResult r = lazy_greedy(t, opts);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_EQ(r.selected[0], 3);
  EXPECT_EQ(r.selected[1], 7);
}

TEST(LazyGreedy, BudgetSkipsInfeasibleCandidates) {
  const ValueTable t = tiny_table();
  GreedyOptions opts;
  opts.k = 3;
  opts.budget = 9.0;  // Candidate 0 (cost 10) can never fit.
  const GreedyResult r = lazy_greedy(t, opts);
  EXPECT_LE(r.total_cost, opts.budget);
  for (int c : r.selected) EXPECT_NE(c, 0);
  // It still packs the feasible ones: 1 (cost 4) + 2 (cost 4) fit.
  EXPECT_EQ(r.selected.size(), 2u);
}

TEST(LazyGreedy, RejectsMalformedTables) {
  ValueTable t = tiny_table();
  t.candidates.push_back(entry(1, 1.0, {1.0}, 0));  // duplicate id
  GreedyOptions opts;
  EXPECT_THROW(lazy_greedy(t, opts), std::invalid_argument);

  ValueTable oob = tiny_table();
  oob.candidates[0].passes[0].first_step = 5;  // pass runs past the grid
  EXPECT_THROW(lazy_greedy(oob, opts), std::invalid_argument);
}

TEST(LocalSearch, AcceptsOnlyImprovingSwapsDeterministically) {
  const ValueTable t = tiny_table();
  // Scripted evaluator: subset {1,3} is the unique best; every eval_score
  // strictly ranks subsets by their table objective (so the search has a
  // gradient to follow).
  int evals = 0;
  const SubsetEvalFn eval = [&](const std::vector<int>& s) {
    ++evals;
    EvalPoint p;
    p.latency_p90_min = 100.0 - brute_objective(t, s);
    return p;
  };
  LocalSearchOptions opts;
  opts.max_rounds = 3;
  opts.top_m = 4;
  opts.max_evals = 30;
  const LocalSearchResult r = local_search(t, {2, 3}, eval, opts);
  EXPECT_TRUE(std::is_sorted(r.selected.begin(), r.selected.end()));
  EXPECT_EQ(r.sim_evals, evals);
  EXPECT_LE(r.sim_evals, opts.max_evals);
  // The scripted landscape pushes it to the brute-force best pair {0,1}.
  EXPECT_GE(r.swaps, 1);
  EXPECT_EQ(r.selected, (std::vector<int>{0, 1}));
}

// --- Full pipeline: determinism + artifact schema -----------------------

struct Scenario {
  groundseg::NetworkOptions net;
  std::vector<groundseg::SatelliteConfig> sats;
  std::vector<CandidateSite> pool;
  weather::SyntheticWeatherProvider wx;

  Scenario()
      : net(make_net()),
        sats(groundseg::generate_constellation(net, kEpoch)),
        pool(make_candidate_pool(net)),
        wx(kWeatherSeed, kEpoch, 3.0) {}

  static groundseg::NetworkOptions make_net() {
    groundseg::NetworkOptions net;
    net.pool_size = 18;
    net.pool_seed = 7;
    net.num_satellites = 6;
    return net;
  }
};

/// Runs the whole pipeline at the given thread count and returns the
/// front artifact body.
std::string run_front(const Scenario& sc, int threads) {
  ValueTableOptions table_opts;
  table_opts.start = kEpoch;
  table_opts.duration_hours = 2.0;
  table_opts.step_seconds = 60.0;
  table_opts.parallel.num_threads = threads;
  const ValueTable table =
      build_value_table(sc.sats, sc.pool, &sc.wx, table_opts);

  core::SimulationOptions sim_opts;
  sim_opts.start = kEpoch;
  sim_opts.duration_hours = 2.0;
  sim_opts.step_seconds = 60.0;
  sim_opts.parallel.num_threads = threads;
  const SubsetEvaluator evaluator(sc.sats, sc.pool, &sc.wx, sim_opts);

  SweepOptions sweep;
  sweep.ks = {4, 8};
  const std::vector<FrontPoint> front =
      budget_sweep(table, sc.pool, evaluator, sweep);

  FrontIdentity id;
  id.pool_size = sc.net.pool_size;
  id.pool_seed = static_cast<long long>(sc.net.pool_seed);
  id.num_satellites = sc.net.num_satellites;
  id.network_seed = static_cast<long long>(sc.net.seed);
  id.weather_seed = static_cast<long long>(kWeatherSeed);
  id.duration_hours = 2.0;
  id.step_seconds = 60.0;
  std::ostringstream out;
  write_netdesign_front(out, id, front);
  return out.str();
}

TEST(NetdesignPipeline, FrontByteIdenticalAcrossThreadsAndReruns) {
  const Scenario sc;
  const std::string t1 = run_front(sc, 1);
  const std::string t4 = run_front(sc, 4);
  const std::string again = run_front(sc, 1);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, again);
  EXPECT_FALSE(t1.empty());
}

TEST(NetdesignPipeline, FrontValidatesAndMutationsAreRejected) {
  const Scenario sc;
  const std::string doc = run_front(sc, 1);
  EXPECT_FALSE(core::validate_netdesign_front_json(doc).has_value());

  const auto corrupt = [&doc](const std::string& from,
                              const std::string& to) {
    std::string bad = doc;
    const auto pos = bad.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    bad.replace(pos, from.size(), to);
    return bad;
  };
  // Wrong schema version, wrong artifact tag, missing point field,
  // non-ascending station ids: each must fail validation.
  EXPECT_TRUE(core::validate_netdesign_front_json(
                  corrupt("\"schema_version\": 2", "\"schema_version\": 1"))
                  .has_value());
  EXPECT_TRUE(core::validate_netdesign_front_json(
                  corrupt("netdesign_front", "campaign_summary"))
                  .has_value());
  EXPECT_TRUE(core::validate_netdesign_front_json(
                  corrupt("latency_p90_min", "latency_p91_min"))
                  .has_value());
  EXPECT_TRUE(core::validate_netdesign_front_json(
                  corrupt("\"dominated\": ", "\"dominatedx\": "))
                  .has_value());
}

TEST(NetdesignPipeline, SubsetEvaluatorMatchesManuallyFilteredRun) {
  const Scenario sc;
  // Running via SimulationOptions::station_subset must equal running the
  // simulator on the pre-filtered station list (the subset mechanism only
  // selects, it never perturbs).
  const std::vector<int> subset = {1, 4, 9, 13};
  core::SimulationOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = 2.0;
  opts.step_seconds = 60.0;

  const auto all = pool_stations(sc.pool);
  core::SimulationOptions with_subset = opts;
  with_subset.station_subset = subset;
  core::Simulator via_subset(sc.sats, all, &sc.wx, with_subset);
  const core::SimulationResult a = via_subset.run();

  std::vector<groundseg::GroundStation> filtered;
  for (const auto& gs : all) {
    if (std::find(subset.begin(), subset.end(), gs.id) != subset.end()) {
      filtered.push_back(gs);
    }
  }
  core::Simulator direct(sc.sats, filtered, &sc.wx, opts);
  const core::SimulationResult b = direct.run();

  EXPECT_DOUBLE_EQ(a.total_delivered_bytes, b.total_delivered_bytes);
  EXPECT_DOUBLE_EQ(a.total_generated_bytes, b.total_generated_bytes);
  ASSERT_EQ(a.latency_minutes.size(), b.latency_minutes.size());
  EXPECT_EQ(a.latency_minutes.sorted(), b.latency_minutes.sorted());
}

TEST(NetdesignPipeline, StationSubsetValidation) {
  core::SimulationOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = 1.0;
  opts.step_seconds = 60.0;
  const std::vector<int> ids = {0, 1, 2, 3, 4};

  opts.station_subset = {2, -1};
  auto err = opts.validate(5, ids);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "station_subset[1]");

  opts.station_subset = {2, 2};
  err = opts.validate(5, ids);
  ASSERT_TRUE(err.has_value());

  opts.station_subset = {2, 99};
  err = opts.validate(5, ids);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->message.find("unknown station id"), std::string::npos);

  opts.station_subset = {4, 2, 0};
  EXPECT_FALSE(opts.validate(5, ids).has_value());
}

TEST(SubsetIo, RoundTripAndRejects) {
  std::ostringstream out;
  groundseg::write_station_subset(out, {9, 3, 27});
  std::istringstream in(out.str());
  const std::vector<int> back = groundseg::read_station_subset(in);
  EXPECT_EQ(back, (std::vector<int>{3, 9, 27}));  // writer sorts

  std::istringstream dup("1\n1\n");
  EXPECT_THROW(groundseg::read_station_subset(dup), std::invalid_argument);
  std::istringstream neg("-4\n");
  EXPECT_THROW(groundseg::read_station_subset(neg), std::invalid_argument);
  std::istringstream junk("3x\n");
  EXPECT_THROW(groundseg::read_station_subset(junk), std::invalid_argument);
  std::istringstream comments("# dgs.stations_subset.v1\n\n5\n");
  EXPECT_EQ(groundseg::read_station_subset(comments),
            (std::vector<int>{5}));
}

TEST(CandidatePool, DeterministicAndEconomicallyPlausible) {
  groundseg::NetworkOptions net = Scenario::make_net();
  const auto a = make_candidate_pool(net);
  const auto b = make_candidate_pool(net);
  ASSERT_EQ(a.size(), static_cast<std::size_t>(net.pool_size));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].station.id, b[i].station.id);
    EXPECT_DOUBLE_EQ(a[i].install_cost, b[i].install_cost);
    EXPECT_DOUBLE_EQ(a[i].availability, b[i].availability);
    EXPECT_GT(a[i].install_cost, 0.0);
    EXPECT_GE(a[i].availability, 0.90);
    EXPECT_LT(a[i].availability, 1.0);
  }
  // Economics draws are a separate stream: same sites, different costs
  // under a different pool seed is NOT expected — the seed changes the
  // sites too.  But the pool's stations must match the plain generator.
  const auto stations = groundseg::generate_dgs_stations(net);
  ASSERT_EQ(stations.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(stations[i].id, a[i].station.id);
    EXPECT_DOUBLE_EQ(stations[i].location.latitude_rad,
                     a[i].station.location.latitude_rad);
  }
}

}  // namespace
}  // namespace dgs::netdesign
