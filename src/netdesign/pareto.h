// Budget sweeps and cost/performance Pareto fronts (DESIGN.md §15).
//
// The sweep runs the selection pipeline at each requested station count
// K: lazy-greedy over the value table, optional swap-based local-search
// refinement, then one authoritative full-Simulator evaluation of the
// final subset.  Each point carries the install cost and the simulated
// latency tail / end-of-horizon backlog, with dominated points flagged so
// a plot of the non-dominated set is the paper-style cost-vs-performance
// front.  The front is written as the `dgs.netdesign.v1` run artifact
// validated by core::validate_netdesign_front_json.
#pragma once

#include <iosfwd>
#include <vector>

#include "src/core/simulator.h"
#include "src/netdesign/optimizer.h"

namespace dgs::netdesign {

/// Full-simulator subset evaluator (the expensive tier).  Borrows the
/// scenario; every evaluate() call runs a complete horizon on the
/// station subset via SimulationOptions::station_subset.
class SubsetEvaluator {
 public:
  /// `base` must validate against the pool's station list; its
  /// station_subset field is overwritten per call.  All borrowed
  /// arguments must outlive the evaluator.
  SubsetEvaluator(const std::vector<groundseg::SatelliteConfig>& sats,
                  const std::vector<CandidateSite>& pool,
                  const weather::WeatherProvider* actual_weather,
                  const core::SimulationOptions& base);

  /// Evaluates the subset given as ascending pool indices.  A run that
  /// delivers nothing reports the whole horizon as its latency
  /// percentiles (the pessimistic sentinel), so empty subsets rank last.
  EvalPoint evaluate(const std::vector<int>& pool_indices) const;

 private:
  const std::vector<groundseg::SatelliteConfig>* sats_;
  const std::vector<CandidateSite>* pool_;
  const weather::WeatherProvider* weather_;
  core::SimulationOptions base_;
};

/// One point of the front: the selection at station count K and its
/// simulated performance.
struct FrontPoint {
  double cost = 0.0;          ///< Sum of selected install costs.
  double objective_gb = 0.0;  ///< Greedy coverage objective (table tier).
  EvalPoint eval;             ///< Simulator tier (authoritative).
  bool dominated = false;     ///< Some other point is >= on cost, p90
                              ///< latency, and backlog (one strictly).
  std::vector<int> station_ids;  ///< GroundStation::id, ascending.
};

struct SweepOptions {
  std::vector<int> ks;  ///< Station counts, strictly ascending, >= 1.
  double budget = 0.0;  ///< Per-point install-cost cap; 0 = unlimited.
  bool refine = false;  ///< Run local search at each K.
  LocalSearchOptions local;  ///< Only read when refine is set.
};

/// Runs the sweep.  Points whose effective station count collapses onto
/// an earlier point's (a binding budget can select fewer than K) are
/// dropped, so the returned counts are strictly ascending.  Deterministic
/// for fixed inputs and any thread count.
std::vector<FrontPoint> budget_sweep(const ValueTable& table,
                                     const std::vector<CandidateSite>& pool,
                                     const SubsetEvaluator& evaluator,
                                     const SweepOptions& opts,
                                     obs::Registry* metrics = nullptr);

/// Scenario identity stamped into the front artifact.
struct FrontIdentity {
  long long pool_size = 0;
  long long pool_seed = 0;
  long long num_satellites = 0;
  long long network_seed = 0;
  long long weather_seed = 0;
  double duration_hours = 0.0;
  double step_seconds = 0.0;
};

/// Writes the `dgs.netdesign.v1` front artifact.  Emission is driven by
/// core::netdesign_identity_specs / netdesign_point_specs, so the writer
/// and the validator share one schema table.
void write_netdesign_front(std::ostream& out, const FrontIdentity& identity,
                           const std::vector<FrontPoint>& points);

}  // namespace dgs::netdesign
