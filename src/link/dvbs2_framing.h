// DVB-S2 framing (ETSI EN 302 307 §5): BBFRAME -> FECFRAME -> PLFRAME.
//
// The MODCOD table in dvbs2.h quotes spectral efficiencies; this module
// derives them from the standard's actual frame structure —
//
//   BBFRAME:  80-bit BBHEADER + data field of DFL = k_bch - 80 bits
//   FECFRAME: BCH(k_bch -> n_bch) then LDPC(k_ldpc -> 64800) bits
//   PLFRAME:  90-symbol PL header + 64800/eta_mod data symbols, plus an
//             optional 36-symbol pilot block after every 16 slots
//
// so that efficiency == (k_bch - 80) / (90 + 64800/eta), which must equal
// the table values bit-for-bit (tests enforce this).  It also answers the
// practical question for DGS chunk transfer: how many frames and how much
// air time does a chunk of N bytes cost at a given MODCOD and symbol rate.
#pragma once

#include <cstdint>

#include "src/link/dvbs2.h"

namespace dgs::link {

/// Normal FECFRAME length [bits].
inline constexpr int kFecFrameBits = 64800;
/// BBHEADER length [bits].
inline constexpr int kBbHeaderBits = 80;
/// PLHEADER length [symbols].
inline constexpr int kPlHeaderSymbols = 90;
/// Slot size [symbols] and pilot block [symbols] per 16 slots.
inline constexpr int kSlotSymbols = 90;
inline constexpr int kPilotBlockSymbols = 36;

/// LDPC/BCH block sizes for a normal FECFRAME at the given code rate.
struct FecParams {
  int k_bch = 0;   ///< Uncoded BCH block = BBFRAME length [bits].
  int k_ldpc = 0;  ///< BCH codeword = LDPC information length [bits].
};

/// Parameters for the 11 normal-frame code rates.  Throws
/// std::invalid_argument for a rate not in the standard (matching is
/// exact on the rational value).
FecParams fec_params(double code_rate);

/// Bits per constellation symbol.
int bits_per_symbol(Modulation mod);

/// Payload (data-field) bits carried by one PLFRAME: k_bch - 80.
int plframe_payload_bits(const ModCod& mc);

/// Total symbols of one PLFRAME (header + data slots + pilots if enabled).
int plframe_symbols(const ModCod& mc, bool pilots = false);

/// Spectral efficiency derived from the frame structure
/// (payload bits / total symbols); equals ModCod::spectral_efficiency for
/// pilots == false.
double derived_efficiency(const ModCod& mc, bool pilots = false);

/// Air-time accounting for transferring `payload_bytes` at `mc`.
struct FrameAccounting {
  std::int64_t frames = 0;          ///< PLFRAMEs needed (last one padded).
  std::int64_t total_symbols = 0;
  double duration_s = 0.0;          ///< At the given symbol rate.
  double efficiency_achieved = 0.0; ///< Payload bits / total symbols,
                                    ///< including last-frame padding.
};
FrameAccounting frame_accounting(const ModCod& mc, double payload_bytes,
                                 double symbol_rate_hz, bool pilots = false);

/// Stable index of a MODCOD within dvbs2_modcods() — the byte used in the
/// uploaded plan's wire format.  Throws std::invalid_argument if `mc` is
/// not a table entry.
std::uint8_t modcod_index(const ModCod& mc);
const ModCod& modcod_by_index(std::uint8_t index);

}  // namespace dgs::link
