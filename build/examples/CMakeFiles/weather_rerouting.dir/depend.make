# Empty dependencies file for weather_rerouting.
# This may be replaced when dependencies are built.
