// E27 — multi-tenant fair share (DESIGN.md §16): three tenants with
// weights 1/2/4 fly interleaved slices of the constellation over the
// contended DGS 25% network for 24 h.  The deficit-weighted arbiter must
// (a) order realized shares by weight and pull the light/heavy tenants'
// shares toward their entitlements (exact proportionality is physically
// unreachable: a tenant's bytes are capped by its own fleet's pass
// windows, not just by its weight), and (b) cost essentially nothing:
// total delivered bytes must stay within 2% of the untenanted baseline
// (which a single tenant reproduces bit-for-bit).  The run is
// deterministic, so the thresholds gate exact, reproducible numbers; the
// binary exits non-zero when any property fails, so CI can gate on it.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "src/core/market.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E27: multi-tenant fair share (24 h, DGS 25%% = 43 "
              "stations, 4x demand, weights 1/2/4) ===\n\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  // Fair share only matters under scarcity: at the paper's 100 GB/day the
  // 43-station network delivers ~97% of demand and every weight vector
  // yields the same shares.  4x demand saturates the network, making
  // delivered bytes the contested resource the arbiter divides.
  std::vector<groundseg::SatelliteConfig> sats = setup.sats;
  for (auto& s : sats) s.data_generation_bytes_per_day *= 4.0;

  // Interleaved slices: tenant t flies satellites s with s % 3 == t, so
  // all three fleets see comparable orbits and the only asymmetry is the
  // configured weight.
  const auto tenant_of = [](std::size_t s) { return static_cast<int>(s % 3); };

  // Untenanted baseline: same fleet, no arbitration.  Its per-slice
  // shares are the "natural" split the arbiter must improve on.
  const core::SimulationOptions plain = day_sim();
  const core::SimulationResult base =
      core::Simulator(sats, setup.dgs25, &wx, plain).run();
  double natural[3] = {0, 0, 0};
  for (std::size_t s = 0; s < sats.size(); ++s) {
    natural[tenant_of(s)] += base.per_satellite[s].delivered_bytes;
  }
  for (double& n : natural) n /= base.total_delivered_bytes;

  const double weights[3] = {1.0, 2.0, 4.0};
  core::SimulationOptions opts = day_sim();
  opts.tenants.resize(3);
  for (int t = 0; t < 3; ++t) {
    opts.tenants[t].name = std::string("tenant_") + char('a' + t);
    opts.tenants[t].weight = weights[t];
  }
  for (std::size_t s = 0; s < sats.size(); ++s) {
    opts.tenants[tenant_of(s)].satellites.push_back(static_cast<int>(s));
  }
  const core::SimulationResult r =
      core::Simulator(sats, setup.dgs25, &wx, opts).run();

  std::printf("  %-10s %7s %12s %13s %9s %8s %9s\n", "tenant", "weight",
              "delivered", "entitlement", "natural", "share", "closure");
  bool ok = true;
  for (int t = 0; t < 3; ++t) {
    const core::TenantOutcome& o = r.per_tenant[t];
    // Fraction of the natural-split -> entitlement gap the arbiter
    // closed (1 = share lands exactly on entitlement).
    const double gap = o.entitlement - natural[t];
    const double closure =
        std::abs(gap) > 1e-12 ? (o.share - natural[t]) / gap : 1.0;
    std::printf("  %-10s %7.1f %9.2f TB %12.3f %9.3f %8.3f %8.0f%%\n",
                o.name.c_str(), o.weight, o.delivered_bytes / 1e12,
                o.entitlement, natural[t], o.share, 100.0 * closure);
    if (t > 0 && o.share <= r.per_tenant[t - 1].share) {
      std::printf("  FAIL: shares must ascend with weight\n");
      ok = false;
    }
    // Tenants whose entitlement sits far from the natural split must be
    // moved at least a quarter of the way there; near-entitled tenants
    // (the middle weight) just must not be pushed away.
    if (std::abs(gap) > 0.05 && closure < 0.20) {
      std::printf("  FAIL: %s closes only %.0f%% of its fairness gap "
                  "(need >= 20%%)\n",
                  o.name.c_str(), 100.0 * closure);
      ok = false;
    }
    if (std::abs(gap) <= 0.05 && std::abs(o.share - o.entitlement) > 0.10) {
      std::printf("  FAIL: %s share %.3f strays from entitlement %.3f\n",
                  o.name.c_str(), o.share, o.entitlement);
      ok = false;
    }
  }
  const double spread =
      r.per_tenant[2].share / r.per_tenant[0].share;
  std::printf("  heaviest/lightest share ratio: %.2f\n", spread);
  if (spread < 1.35) {
    std::printf("  FAIL: weight-4 tenant must out-deliver weight-1 by "
                ">= 1.35x (got %.2fx)\n",
                spread);
    ok = false;
  }

  const double total = r.total_delivered_bytes;
  const double drift = total / base.total_delivered_bytes - 1.0;
  std::printf("\n  total delivered: %.2f TB tenanted vs %.2f TB "
              "untenanted (%+.2f%%)\n",
              total / 1e12, base.total_delivered_bytes / 1e12,
              100.0 * drift);
  if (std::abs(drift) > 0.02) {
    std::printf("  FAIL: arbitration cost exceeds the 2%% budget\n");
    ok = false;
  }
  std::printf("\n  expected shape: the arbiter drags the natural ~1/3 "
              "splits toward entitlements 1/7, 2/7, 4/7 while "
              "redistributing — not shrinking — the network's total "
              "throughput.\n");
  std::printf("\n%s\n", ok ? "E27 PASS" : "E27 FAIL");
  return ok ? 0 : 1;
}
