// Overhead of the observability primitives (DESIGN.md §10): what one
// trace span and one counter increment cost with instrumentation enabled,
// runtime-disabled, and compiled out.  The CI bench-smoke lane pins the
// disabled numbers — leaving observability off must stay (near) free, and
// the enabled span cost bounds what full tracing adds to a hot loop.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

using namespace dgs;

// What DGS_TRACE_SPAN expands to under -DDGS_OBS_NO_TRACING: nothing.
// The empty loop is the floor the other two span benches compare against.
void BM_SpanCompiledOut(benchmark::State& state) {
  obs::set_trace_enabled(false);
  for (auto _ : state) {
    static_cast<void>(0);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanCompiledOut);

// Compiled in but runtime-disabled: one relaxed load + branch.
void BM_SpanRuntimeDisabled(benchmark::State& state) {
  obs::set_trace_enabled(false);
  for (auto _ : state) {
    DGS_TRACE_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanRuntimeDisabled);

// Fully enabled: two clock reads plus a buffered record.  The buffer is
// flushed outside the timed region so the steady-state cost is measured,
// not an unbounded allocation.
void BM_SpanEnabled(benchmark::State& state) {
  obs::set_trace_enabled(true);
  std::int64_t since_flush = 0;
  for (auto _ : state) {
    DGS_TRACE_SPAN("bench.enabled");
    benchmark::ClobberMemory();
    if (++since_flush == (1 << 16)) {
      state.PauseTiming();
      obs::clear_trace();
      since_flush = 0;
      state.ResumeTiming();
    }
  }
  obs::set_trace_enabled(false);
  obs::clear_trace();
}
BENCHMARK(BM_SpanEnabled);

// One counter increment: a relaxed fetch_add on this thread's shard.
// The threads:4 variant exercises shard separation (no cache-line
// ping-pong between incrementing threads).
void BM_CounterInc(benchmark::State& state) {
  static obs::Registry registry;
  static obs::Counter* counter =
      registry.counter("dgs_bench_counter_total", "micro_obs scratch counter");
  for (auto _ : state) counter->inc();
}
BENCHMARK(BM_CounterInc);
BENCHMARK(BM_CounterInc)->Threads(4)->Name("BM_CounterIncContended");

// One histogram observation: bucket search + shard fetch_add.
void BM_HistogramObserve(benchmark::State& state) {
  static obs::Registry registry;
  static obs::Histogram* hist = registry.histogram(
      "dgs_bench_histogram", "micro_obs scratch histogram",
      {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0});
  double v = 0.0;
  for (auto _ : state) {
    v += 1.0;
    if (v > 128.0) v = 0.0;
    hist->observe(v);
  }
}
BENCHMARK(BM_HistogramObserve);

}  // namespace

BENCHMARK_MAIN();
