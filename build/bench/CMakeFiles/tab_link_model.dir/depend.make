# Empty dependencies file for tab_link_model.
# This may be replaced when dependencies are built.
