// Astronomical time utilities: calendar <-> Julian date conversion, Greenwich
// Mean Sidereal Time, and an Epoch type used as the simulation clock.
//
// DGS treats UTC == UT1 (the sub-second difference is irrelevant at the
// kilometre-level accuracy of TLE propagation) and ignores leap seconds over
// the day-scale horizons the simulator runs.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace dgs::util {

/// A broken-down civil UTC date/time.
struct DateTime {
  int year = 2000;      ///< Full year, e.g. 2020.
  int month = 1;        ///< 1..12.
  int day = 1;          ///< 1..31.
  int hour = 0;         ///< 0..23.
  int minute = 0;       ///< 0..59.
  double second = 0.0;  ///< [0, 60).

  friend bool operator==(const DateTime&, const DateTime&) = default;
};

/// Julian date of a civil UTC date/time (valid for years 1900..2099).
double julian_date(const DateTime& dt);

/// Inverse of julian_date().
DateTime calendar_from_jd(double jd);

/// Greenwich Mean Sidereal Time [rad, in 0..2pi) at the given Julian date
/// (IAU-82 model, the one used with TLE/TEME frames).
double gmst(double jd_ut1);

/// A point on the simulation timeline.  Internally a Julian date split into
/// integer day + fraction to preserve sub-millisecond resolution over
/// century-scale magnitudes.
class Epoch {
 public:
  Epoch() = default;
  explicit Epoch(const DateTime& dt);
  /// From a raw Julian date.
  static Epoch from_jd(double jd);
  /// From TLE epoch fields: two-digit year and fractional day-of-year.
  static Epoch from_tle_epoch(int two_digit_year, double day_of_year);

  /// Julian date (whole + fraction); fine for GMST / propagation spans.
  double jd() const { return jd_whole_ + jd_frac_; }

  /// The exact internal split, for lossless serialization (checkpoints).
  /// `from_parts` round-trips bit-for-bit: no normalization is applied.
  double jd_whole() const { return jd_whole_; }
  double jd_frac() const { return jd_frac_; }
  static Epoch from_parts(double whole, double frac) {
    return Epoch(whole, frac);
  }

  /// Seconds elapsed from `earlier` to this epoch (negative if this < earlier).
  double seconds_since(const Epoch& earlier) const;
  /// Minutes elapsed from `earlier` to this epoch.
  double minutes_since(const Epoch& earlier) const {
    return seconds_since(earlier) / 60.0;
  }

  /// A new epoch this many seconds later (may be negative).
  Epoch plus_seconds(double s) const;
  Epoch plus_minutes(double m) const { return plus_seconds(m * 60.0); }
  Epoch plus_days(double d) const { return plus_seconds(d * 86400.0); }

  /// Civil UTC representation.
  DateTime utc() const { return calendar_from_jd(jd()); }
  /// ISO-8601-like "YYYY-MM-DDThh:mm:ssZ" string (seconds truncated).
  std::string to_string() const;

  friend bool operator==(const Epoch& a, const Epoch& b) {
    return a.jd() == b.jd();
  }
  friend std::partial_ordering operator<=>(const Epoch& a, const Epoch& b) {
    return a.jd() <=> b.jd();
  }

 private:
  Epoch(double whole, double frac) : jd_whole_(whole), jd_frac_(frac) {}
  void normalize();

  double jd_whole_ = 2451545.0;  ///< Integer-ish part of the Julian date.
  double jd_frac_ = 0.0;         ///< Fractional remainder in [0, 1).
};

}  // namespace dgs::util
