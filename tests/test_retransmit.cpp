// The "missing pieces" retransmission loop (paper §3, §3.3): transmissions
// into a dead link waste the slot, sit in limbo, and are re-queued by the
// collated report at the next transmit-capable contact.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/data_queue.h"
#include "src/core/simulator.h"
#include "src/weather/synthetic.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

TEST(Retransmit, FailedTransmissionEntersLimbo) {
  OnboardQueue q;
  q.generate(100.0, kT0);
  int deliveries = 0;
  const double sent = q.transmit(
      60.0, kT0.plus_seconds(60),
      [&](double, const DataChunk&) { ++deliveries; },
      /*received=*/false);
  EXPECT_DOUBLE_EQ(sent, 60.0);
  EXPECT_EQ(deliveries, 0);  // ground captured nothing
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 40.0);
  EXPECT_DOUBLE_EQ(q.pending_ack_bytes(), 60.0);
  EXPECT_DOUBLE_EQ(q.storage_bytes(), 100.0);  // limbo still occupies storage
}

TEST(Retransmit, CollatedReportRequeuesMissingPieces) {
  OnboardQueue q;
  q.generate(100.0, kT0);
  q.transmit(60.0, kT0.plus_seconds(60), nullptr, /*received=*/false);

  int acks = 0;
  const double requeued = q.acknowledge_all(
      kT0.plus_seconds(600), [&](double, double) { ++acks; });
  EXPECT_EQ(acks, 0);  // nothing to positively acknowledge
  EXPECT_DOUBLE_EQ(requeued, 60.0);
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 100.0);  // back in the queue
  EXPECT_DOUBLE_EQ(q.pending_ack_bytes(), 0.0);
}

TEST(Retransmit, RequeuedDataKeepsOriginalCaptureTime) {
  OnboardQueue q;
  q.generate(50.0, kT0);
  q.transmit(50.0, kT0.plus_seconds(60), nullptr, /*received=*/false);
  q.acknowledge_all(kT0.plus_seconds(600), nullptr);

  // Retransmit successfully much later: latency must span from the
  // ORIGINAL capture, not the retransmission.
  std::vector<double> latencies;
  q.transmit(50.0, kT0.plus_seconds(1200),
             [&](double lat, const DataChunk&) { latencies.push_back(lat); });
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_NEAR(latencies[0], 1200.0, 1e-6);
}

TEST(Retransmit, RequeueRestoresPriorityOrder) {
  OnboardQueue q;
  q.generate(10.0, kT0, 8.0);  // urgent
  q.transmit(10.0, kT0.plus_seconds(60), nullptr, /*received=*/false);
  q.generate(10.0, kT0.plus_seconds(120), 1.0);  // bulk arrives meanwhile
  q.acknowledge_all(kT0.plus_seconds(180), nullptr);
  // The re-queued urgent piece must be served before the bulk chunk.
  std::vector<double> order;
  q.transmit(20.0, kT0.plus_seconds(240),
             [&](double, const DataChunk& c) { order.push_back(c.priority); });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_DOUBLE_EQ(order[0], 8.0);
  EXPECT_DOUBLE_EQ(order[1], 1.0);
}

TEST(Retransmit, MixedBatchesSplitCorrectly) {
  OnboardQueue q;
  q.generate(100.0, kT0);
  q.transmit(30.0, kT0.plus_seconds(60), nullptr, /*received=*/true);
  q.transmit(20.0, kT0.plus_seconds(120), nullptr, /*received=*/false);
  q.transmit(10.0, kT0.plus_seconds(180), nullptr, /*received=*/true);

  std::vector<double> acked;
  const double requeued = q.acknowledge_all(
      kT0.plus_seconds(600), [&](double, double bytes) {
        acked.push_back(bytes);
      });
  ASSERT_EQ(acked.size(), 2u);
  EXPECT_DOUBLE_EQ(acked[0] + acked[1], 40.0);
  EXPECT_DOUBLE_EQ(requeued, 20.0);
  EXPECT_DOUBLE_EQ(q.queued_bytes(), 40.0 + 20.0);  // untouched + requeued
}

TEST(Retransmit, SimulatorAccountsWasteAndRequeue) {
  // Weather-blind scheduling under real weather must produce failed slots
  // whose bytes are wasted, then requeued, then eventually delivered —
  // with total conservation.
  groundseg::NetworkOptions net;
  net.num_stations = 40;
  net.num_satellites = 25;
  net.tx_fraction = 0.2;
  net.seed = 77;
  auto sats = groundseg::generate_constellation(net, kT0);
  for (auto& s : sats) s.radio.frequency_hz = 14.0e9;  // weather-sensitive
  const auto stations = groundseg::generate_dgs_stations(net);
  weather::SyntheticWeatherProvider wx(31337, kT0, 13.0);

  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 12.0;
  opts.weather_aware = false;  // guarantee mis-predictions
  const SimulationResult r = Simulator(sats, stations, &wx, opts).run();

  EXPECT_GT(r.failed_assignments, 0);
  EXPECT_GT(r.wasted_transmission_bytes, 0.0);
  // Conservation: captured = delivered + queued + limbo (per-satellite
  // pending includes unreported limbo bytes).
  double generated = 0.0, delivered = 0.0, queued = 0.0, pending = 0.0;
  for (const auto& o : r.per_satellite) {
    generated += o.generated_bytes;
    delivered += o.delivered_bytes;
    queued += o.backlog_bytes;
    pending += o.pending_ack_bytes;
  }
  // Delivered bytes are acked-or-awaiting-ack but NOT in limbo; limbo is
  // inside `pending`.  delivered-pending overlap makes exact partitioning
  // awkward, so check the loose invariant and the strict byte ledger:
  // generated >= delivered + queued (requeues never duplicate bytes).
  EXPECT_GE(generated + 1.0, delivered + queued);
  // And requeued bytes were all previously wasted.
  EXPECT_LE(r.requeued_bytes, r.wasted_transmission_bytes + 1.0);
}

}  // namespace
}  // namespace dgs::core
