#include "src/util/check.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dgs::util {
namespace internal {
namespace {

std::string format_report(const char* kind, const char* file, int line,
                          const char* expr, const std::string& context) {
  std::string msg = std::string(kind) + " failed at " + file + ":" +
                    std::to_string(line) + ": " + expr;
  if (!context.empty()) msg += " (" + context + ")";
  return msg;
}

}  // namespace

void check_failed(const char* kind, const char* file, int line,
                  const char* expr, const std::string& context) {
  const std::string msg = format_report(kind, file, line, expr, context);
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

void ensure_failed(const char* file, int line, const char* expr,
                   const std::string& context) {
  throw std::invalid_argument(
      format_report("DGS_ENSURE", file, line, expr, context));
}

}  // namespace internal
}  // namespace dgs::util
