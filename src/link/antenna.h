// Antenna gain and receive system noise modelling.
#pragma once

namespace dgs::link {

/// Boresight gain [dBi] of a parabolic dish of `diameter_m` at `freq_hz`
/// with aperture efficiency `efficiency` (default 0.55, typical for
/// low-cost prime-focus dishes): G = 10*log10(eff * (pi*D*f/c)^2).
double dish_gain_dbi(double diameter_m, double freq_hz,
                     double efficiency = 0.55);

/// Receive system description used for G/T computation.
struct ReceiveSystem {
  double dish_diameter_m = 1.0;     ///< DGS nodes default to 1 m (paper §4).
  double aperture_efficiency = 0.55;
  double lna_noise_temp_k = 75.0;   ///< Receiver (LNA+losses) noise temp.
  double clear_sky_temp_k = 60.0;   ///< Antenna temperature, clear sky.
  double ground_spillover_k = 20.0; ///< Constant ground pickup.
};

/// System noise temperature [K] including the increase caused by
/// atmospheric attenuation `atmos_loss_db` in front of the antenna:
/// an attenuator at physical temperature T_m=275 K emits
/// T_sky = T_m * (1 - 10^(-A/10)).
double system_noise_temp_k(const ReceiveSystem& rx, double atmos_loss_db);

/// Receive figure of merit G/T [dB/K] at `freq_hz` under the given
/// atmospheric loss.
double g_over_t_db(const ReceiveSystem& rx, double freq_hz,
                   double atmos_loss_db);

}  // namespace dgs::link
