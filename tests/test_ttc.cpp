// S-band TT&C uplink: budget magnitudes, rate ladder, validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/link/ttc.h"

namespace dgs::link {
namespace {

TEST(TtcUplink, PaperClassRatesAtLeoRanges) {
  // Paper §2: uplink is "tens to hundreds of kbps".  A 10 W, 1 m S-band
  // chain must support at least hundreds of kbps across typical LEO slant
  // ranges.
  const TtcUplinkSpec gs;
  const SatCommandReceiver sat;
  for (double range : {600.0, 1000.0, 1500.0, 2200.0}) {
    const double rate = ttc_uplink_rate_bps(gs, sat, range);
    EXPECT_GE(rate, 64e3) << "range " << range;
    EXPECT_LE(rate, 1024e3);
  }
}

TEST(TtcUplink, Cn0DecreasesWithRange) {
  const TtcUplinkSpec gs;
  const SatCommandReceiver sat;
  double prev = 1e9;
  for (double range : {500.0, 1000.0, 2000.0, 3000.0}) {
    const double cn0 = ttc_uplink_cn0_dbhz(gs, sat, range);
    EXPECT_LT(cn0, prev);
    prev = cn0;
  }
  // 20*log10 slope: doubling range costs ~6 dB.
  EXPECT_NEAR(ttc_uplink_cn0_dbhz(gs, sat, 1000.0) -
                  ttc_uplink_cn0_dbhz(gs, sat, 2000.0),
              6.02, 0.01);
}

TEST(TtcUplink, RateLadderThresholds) {
  // 4 kbps needs C/N0 >= 4.5 + 3 + 10log10(4000) = 43.5 dBHz.
  EXPECT_DOUBLE_EQ(ttc_select_rate_bps(43.0), 0.0);
  EXPECT_DOUBLE_EQ(ttc_select_rate_bps(43.6), 4e3);
  // 1024 kbps needs >= 7.5 + 60.1 = 67.6 dBHz.
  EXPECT_DOUBLE_EQ(ttc_select_rate_bps(67.0), 256e3);
  EXPECT_DOUBLE_EQ(ttc_select_rate_bps(68.0), 1024e3);
}

TEST(TtcUplink, RateMonotoneInCn0) {
  double prev = 0.0;
  for (double cn0 = 40.0; cn0 <= 75.0; cn0 += 0.5) {
    const double r = ttc_select_rate_bps(cn0);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(TtcUplink, MoreMarginLowersRate) {
  const TtcUplinkSpec gs;
  const SatCommandReceiver sat;
  EXPECT_GE(ttc_uplink_rate_bps(gs, sat, 1500.0, 0.0),
            ttc_uplink_rate_bps(gs, sat, 1500.0, 10.0));
}

TEST(TtcUplink, RejectsBadInputs) {
  const TtcUplinkSpec gs;
  const SatCommandReceiver sat;
  EXPECT_THROW(ttc_uplink_cn0_dbhz(gs, sat, 0.0), std::invalid_argument);
  TtcUplinkSpec bad = gs;
  bad.tx_power_w = 0.0;
  EXPECT_THROW(ttc_uplink_cn0_dbhz(bad, sat, 1000.0), std::invalid_argument);
  EXPECT_THROW(ttc_select_rate_bps(60.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dgs::link
