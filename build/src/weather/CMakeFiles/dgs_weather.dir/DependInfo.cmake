
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/weather/climatology.cpp" "src/weather/CMakeFiles/dgs_weather.dir/climatology.cpp.o" "gcc" "src/weather/CMakeFiles/dgs_weather.dir/climatology.cpp.o.d"
  "/root/repo/src/weather/synthetic.cpp" "src/weather/CMakeFiles/dgs_weather.dir/synthetic.cpp.o" "gcc" "src/weather/CMakeFiles/dgs_weather.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dgs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
