// E8 — §3.2 link-model tables: predicted rate vs elevation, and atmospheric
// attenuation vs frequency/rain (the paper's "rain can attenuate 10-20 dB
// in X, Ku, Ka bands" claim).
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "src/link/rain.h"
#include "src/util/angles.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;
  using util::deg2rad;

  std::printf("=== E8: link quality model (Sec. 3.2) ===\n");

  // Table 1: DGS node rate vs elevation (clear sky), 550 km orbit.
  std::printf("\nDGS node (1 m dish, 1 channel) predicted rate vs elevation, "
              "clear sky:\n");
  std::printf("  %6s %9s %8s %8s %-12s %10s\n", "el", "range", "C/N0",
              "Es/N0", "MODCOD", "rate");
  const double re = 6371.0, h = 550.0;
  for (double el_deg : {5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 75.0, 90.0}) {
    const double el = deg2rad(el_deg);
    const double range =
        std::sqrt((re + h) * (re + h) - re * re * std::cos(el) * std::cos(el)) -
        re * std::sin(el);
    link::PathConditions path;
    path.range_km = range;
    path.elevation_rad = el;
    path.site_latitude_rad = deg2rad(45.0);
    const auto b = link::evaluate_link(link::RadioSpec{},
                                       link::ReceiveSystem{}, path);
    std::printf("  %5.0f: %6.0f km %7.1f dBHz %6.2f dB %-12s %7.1f Mbps\n",
                el_deg, range, b.cn0_dbhz, b.esn0_db,
                b.modcod ? b.modcod->name.data() : "none",
                b.data_rate_bps / 1e6);
  }

  // Table 2: rain attenuation vs frequency and rain rate (30 deg elevation,
  // mid-latitude).
  std::printf("\nSlant-path rain attenuation [dB] at 30 deg elevation "
              "(ITU-R P.838/839 + reduction factor):\n");
  std::printf("  %10s", "rain mm/h");
  const double freqs[] = {2.2, 8.2, 12.0, 14.0, 20.0, 26.5, 40.0};
  for (double f : freqs) std::printf(" %7.1fG", f);
  std::printf("\n");
  for (double rain : {1.0, 5.0, 12.5, 25.0, 50.0, 100.0}) {
    std::printf("  %10.1f", rain);
    for (double f : freqs) {
      std::printf(" %8.2f",
                  link::rain_attenuation_db(f, rain, deg2rad(30.0),
                                            deg2rad(45.0), 0.0));
    }
    std::printf("\n");
  }
  std::printf("  (paper Sec. 1: 10-25 dB attenuation due to rain/clouds at "
              "8 GHz and above -> matches the Ku/Ka columns at heavy rain)\n");

  // Table 3: effect of rain on the end-to-end DGS link at X band.
  std::printf("\nDGS node at 30 deg elevation under increasing rain "
              "(X band, 8.2 GHz):\n");
  std::printf("  %10s %8s %8s %8s %-12s %10s\n", "rain mm/h", "A_rain",
              "G/T", "Es/N0", "MODCOD", "rate");
  const double el = deg2rad(30.0);
  const double range =
      std::sqrt((re + h) * (re + h) - re * re * std::cos(el) * std::cos(el)) -
      re * std::sin(el);
  for (double rain : {0.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    link::PathConditions path;
    path.range_km = range;
    path.elevation_rad = el;
    path.site_latitude_rad = deg2rad(45.0);
    path.rain_rate_mm_h = rain;
    path.cloud_liquid_kg_m2 = rain > 0.0 ? 1.0 : 0.0;
    const auto b = link::evaluate_link(link::RadioSpec{},
                                       link::ReceiveSystem{}, path);
    std::printf("  %10.1f %7.2f %7.2f %7.2f  %-12s %7.1f Mbps\n", rain,
                b.rain_db, b.g_over_t_db, b.esn0_db,
                b.modcod ? b.modcod->name.data() : "none",
                b.data_rate_bps / 1e6);
  }
  return 0;
}
