// Bipartite matching between satellites and ground stations (paper §3.1).
//
// At each scheduling instant the contact graph is bipartite: satellites on
// one side, stations on the other, an edge where a downlink is feasible,
// weighted by the value function.  Stations support point-to-point links
// only, so the schedule is a matching.  Three algorithms are provided:
//
//   * Gale-Shapley stable matching — the paper's choice: in a fragmented
//     network no satellite-station pair can defect to a link both prefer.
//   * Maximum-weight matching (Hungarian algorithm) — the "optimal" global
//     alternative the paper discusses and rejects; kept for the ablation.
//   * Greedy descending-weight — the cheap baseline.
//
// Preferences on both sides derive from the edge weights (ties broken by
// index), which makes the stable matching unique (Gale-Shapley proposer
// optimality coincides with receiver optimality for aligned preferences).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dgs::core {

/// One feasible satellite-station link at a scheduling instant.
struct Edge {
  int sat = 0;
  int station = 0;
  double weight = 0.0;  ///< Value of serving this edge; <= 0 edges ignored.
};

/// Indices into the input edge vector, at most one per satellite and one
/// per station.
using Matching = std::vector<int>;

/// Gale-Shapley stable matching, satellites proposing.  O(E log E + E).
Matching stable_matching(const std::vector<Edge>& edges, int num_sats,
                         int num_stations);

/// Maximum-total-weight matching via the Hungarian algorithm with
/// potentials, O(K^3) for K = max(num_sats, num_stations).
Matching optimal_matching(const std::vector<Edge>& edges, int num_sats,
                          int num_stations);

/// Greedy: repeatedly take the heaviest edge whose endpoints are free.
Matching greedy_matching(const std::vector<Edge>& edges, int num_sats,
                         int num_stations);

/// Sum of weights of the selected edges.
double matching_value(const std::vector<Edge>& edges, const Matching& m);

/// True if no unmatched-but-feasible pair (s, g) exists where both s and g
/// would strictly gain by abandoning their assignment for each other.
/// (The stability property Gale-Shapley guarantees.)
bool is_stable(const std::vector<Edge>& edges, const Matching& m,
               int num_sats, int num_stations);

/// Full audit of a computed matching — the "Matching::validate()" contract
/// the scheduler runs (under DGS_DCHECK) on every result.  Rejects edge
/// indices out of range, non-positive selected weights, and double-booked
/// satellites or stations; with `require_stable` additionally audits weak
/// stability against the weight-derived Gale-Shapley preference order.
/// Returns an empty string when valid, else a description of the first
/// violation found.
std::string validate_matching(const std::vector<Edge>& edges,
                              const Matching& m, int num_sats,
                              int num_stations, bool require_stable = true);

/// Capacitated-market variant: stations may hold up to their capacity,
/// satellites at most one link.
std::string validate_b_matching(const std::vector<Edge>& edges,
                                const Matching& m, int num_sats,
                                const std::vector<int>& capacities,
                                bool require_stable = true);

enum class MatcherKind { kStable, kOptimal, kGreedy };
std::string_view matcher_name(MatcherKind kind);

Matching run_matcher(MatcherKind kind, const std::vector<Edge>& edges,
                     int num_sats, int num_stations);

// --- Warm-start stable matching (constellation scale, DESIGN.md §14) --------
//
// Consecutive scheduling instants share most of their contact graph: a
// pass lasts many quanta, so the previous instant's assignment is usually
// still stable under the new weights.  Because preferences on both sides
// derive from the same edge weight (ties by index), the stable matching is
// UNIQUE — so any matching that passes the validity + stability audit IS
// the Gale-Shapley result, and can be returned without running deferred
// acceptance at all.
//
// WarmStartMatcher exploits this in two tiers, both exact:
//   1. Reuse: map the previous instant's (sat, station) pairs onto the new
//      edge set (dropping vanished pairs) and audit the candidate in O(E).
//      If it is stable, return it directly.
//   2. Proposal-pointer carryover: when reuse fails, run Gale-Shapley, but
//      seed each satellite's preference list with the previous instant's
//      station order, verified against the new weights by one O(d)
//      adjacent-pair sweep per satellite; only lists whose order actually
//      changed are re-sorted.
// Duplicate (sat, station) edges in the input force a plain cold start
// (tier 2 with no carryover): duplicate ties make the edge-index choice
// ambiguous.  In every case the returned matching — indices and order —
// is identical to stable_matching(edges, ...), which tests pin.
class WarmStartMatcher {
 public:
  /// Exactly stable_matching(edges, num_sats, num_stations), warm-started
  /// from the previous call.  Stateful: NOT thread-safe; call from the
  /// thread driving the simulation.
  Matching match(const std::vector<Edge>& edges, int num_sats,
                 int num_stations);

  /// Forget the previous instant (e.g. after a constellation change).
  void reset();

  std::int64_t warm_hits() const { return warm_hits_; }
  std::int64_t cold_starts() const { return cold_starts_; }
  /// Satellites whose preference order was carried over across all cold
  /// starts (vs re-sorted).
  std::int64_t order_reuses() const { return order_reuses_; }

  /// Checkpoint access (core::Session).  The carried-over state decides
  /// warm vs cold on the next instant, which feeds the
  /// dgs_sched_warm_hits/cold_starts counters — so a resumed run must
  /// restore it for metrics byte-equality.  stamp_/slot_ are per-call
  /// scratch and excluded.
  const std::vector<std::pair<int, int>>& prev_pairs() const {
    return prev_pairs_;
  }
  const std::vector<std::vector<int>>& prev_order() const {
    return prev_order_;
  }
  void restore_state(std::vector<std::pair<int, int>> prev_pairs,
                     std::vector<std::vector<int>> prev_order,
                     std::int64_t warm_hits, std::int64_t cold_starts,
                     std::int64_t order_reuses) {
    prev_pairs_ = std::move(prev_pairs);
    prev_order_ = std::move(prev_order);
    warm_hits_ = warm_hits;
    cold_starts_ = cold_starts;
    order_reuses_ = order_reuses;
  }

 private:
  Matching cold_start(const std::vector<Edge>& edges, int num_sats,
                      int num_stations,
                      const std::vector<std::vector<int>>& by_sat,
                      bool allow_carryover);

  /// Previous result as (sat, station) pairs, station-ascending.
  std::vector<std::pair<int, int>> prev_pairs_;
  /// Previous per-satellite preference order (station ids, best first).
  std::vector<std::vector<int>> prev_order_;
  std::int64_t warm_hits_ = 0;
  std::int64_t cold_starts_ = 0;
  std::int64_t order_reuses_ = 0;
  /// Scratch: per-station stamp/edge-slot used while scanning one
  /// satellite's candidates (stamp == sat id marks validity).
  std::vector<int> stamp_;
  std::vector<int> slot_;
};

// --- Beamforming extension (paper §3.3) -------------------------------------
//
// A beamforming ground station can split its aperture across up to
// `capacity` satellites simultaneously (each beam at reduced gain; the
// caller folds that penalty into the edge weights).  Scheduling becomes a
// one-to-many matching: satellites still hold at most one link, stations
// hold up to their capacity.  This is the hospitals/residents variant of
// stable matching.

/// Gale-Shapley with per-station capacities (`capacities.size() ==
/// num_stations`, entries >= 0).  A station holds its `capacity` best
/// proposals and trades up.  Stability: no satellite and station with free
/// capacity (or a strictly worse held satellite) both prefer each other.
Matching stable_b_matching(const std::vector<Edge>& edges, int num_sats,
                           const std::vector<int>& capacities);

/// Greedy descending-weight with per-station capacities.
Matching greedy_b_matching(const std::vector<Edge>& edges, int num_sats,
                           const std::vector<int>& capacities);

/// Stability check for the capacitated market.
bool is_stable_b_matching(const std::vector<Edge>& edges, const Matching& m,
                          int num_sats, const std::vector<int>& capacities);

}  // namespace dgs::core
