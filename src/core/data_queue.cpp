#include "src/core/data_queue.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace dgs::core {

void OnboardQueue::set_capacity(double bytes) {
  DGS_ENSURE_GT(bytes, 0.0);
  capacity_bytes_ = bytes;
}

void OnboardQueue::insert_sorted(DataChunk chunk) {
  // Service order: priority desc, then capture asc.  The common case
  // (fresh capture at bulk priority) belongs at the back; test it first.
  auto belongs_before = [](const DataChunk& a, const DataChunk& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.capture < b.capture;
  };
  if (chunks_.empty() || !belongs_before(chunk, chunks_.back())) {
    chunks_.push_back(std::move(chunk));
    return;
  }
  const auto it =
      std::find_if(chunks_.begin(), chunks_.end(), [&](const DataChunk& c) {
        return belongs_before(chunk, c);
      });
  chunks_.insert(it, std::move(chunk));
}

void OnboardQueue::generate(double bytes, const util::Epoch& capture,
                            double priority) {
  DGS_ENSURE_GE(bytes, 0.0);
  DGS_ENSURE_GE(priority, 0.0);
  offered_bytes_ += bytes;
  if (capacity_bytes_ > 0.0) {
    const double free_bytes = capacity_bytes_ - storage_bytes();
    if (bytes > free_bytes) {
      dropped_bytes_ += bytes - std::max(0.0, free_bytes);
      bytes = std::max(0.0, free_bytes);
    }
  }
  if (bytes == 0.0) return;
  insert_sorted(DataChunk{capture, bytes, bytes, priority});
  queued_bytes_ += bytes;
}

double OnboardQueue::transmit(double budget_bytes, const util::Epoch& now,
                              const DeliveryCallback& on_delivered,
                              bool received, double report_delay_s) {
  DGS_ENSURE_GE(budget_bytes, 0.0);
  DGS_ENSURE_GE(report_delay_s, 0.0);
  double sent = 0.0;
  double budget = budget_bytes;
  PendingBatch batch;
  batch.sent = now;
  batch.report_ready = now.plus_seconds(report_delay_s);
  batch.received = received;
  while (budget > 0.0 && !chunks_.empty()) {
    DataChunk& c = chunks_.front();
    const double take = std::min(budget, c.remaining_bytes);
    c.remaining_bytes -= take;
    budget -= take;
    sent += take;
    if (!received) {
      // Keep the piece for re-queue at the next TX contact.
      batch.pieces.push_back(DataChunk{c.capture, take, take, c.priority});
    }
    if (c.remaining_bytes <= 0.0) {
      if (received && on_delivered) {
        on_delivered(now.seconds_since(c.capture), c);
      }
      chunks_.pop_front();
    }
  }
  if (sent > 0.0) {
    queued_bytes_ -= sent;
    if (queued_bytes_ < 0.0) queued_bytes_ = 0.0;  // float dust
    batch.bytes = sent;
    pending_.push_back(std::move(batch));
    pending_bytes_ += sent;
  }
  return sent;
}

double OnboardQueue::acknowledge_all(const util::Epoch& now,
                                     const AckCallback& on_ack) {
  double requeued = 0.0;
  std::deque<PendingBatch> still_in_flight;
  double still_in_flight_bytes = 0.0;
  for (PendingBatch& b : pending_) {
    // A batch whose report the Internet has not yet relayed (ack-relay
    // faults) is invisible to this contact's collation; it keeps
    // occupying storage until a contact after report_ready.
    if (now.seconds_since(b.report_ready) < 0.0) {
      still_in_flight_bytes += b.bytes;
      still_in_flight.push_back(std::move(b));
      continue;
    }
    if (b.received) {
      // Acks are only ever issued for batches the ground really captured —
      // a received batch must carry no retransmission pieces, and its ack
      // delay cannot be negative (sent in the future).
      DGS_CHECK(b.pieces.empty(),
                "received batch holds " << b.pieces.size()
                                        << " retransmission pieces");
      DGS_CHECK_GE(now.seconds_since(b.sent), 0.0);
      acked_bytes_ += b.bytes;
      if (on_ack) on_ack(now.seconds_since(b.sent), b.bytes);
    } else {
      // The collated report says the ground never captured this batch:
      // put the pieces back, preserving their original capture times so
      // the retransmission latency is accounted honestly.
      for (DataChunk& piece : b.pieces) {
        requeued += piece.total_bytes;
        queued_bytes_ += piece.total_bytes;
        insert_sorted(std::move(piece));
      }
    }
  }
  pending_ = std::move(still_in_flight);
  pending_bytes_ = still_in_flight_bytes;
  return requeued;
}

std::string OnboardQueue::audit_conservation() const {
  // offered == dropped + queued + pending + acked, to within accumulated
  // float dust.  The tolerance scales with lifetime volume: each transmit
  // splits chunks and re-sums doubles, so error grows with traffic.
  const double accounted =
      dropped_bytes_ + queued_bytes_ + pending_bytes_ + acked_bytes_;
  const double tolerance = 1e-6 * std::max(1.0, offered_bytes_);
  if (std::abs(offered_bytes_ - accounted) <= tolerance) return {};
  std::ostringstream err;
  err << "byte conservation violated: offered=" << offered_bytes_
      << " != dropped=" << dropped_bytes_ << " + queued=" << queued_bytes_
      << " + pending_ack=" << pending_bytes_ << " + acked=" << acked_bytes_
      << " (imbalance " << offered_bytes_ - accounted << ")";
  return err.str();
}

}  // namespace dgs::core
