// Property sweep: SGP4 must stay physical and agree with the independent
// RK4-J2 integrator across the whole LEO parameter envelope the synthetic
// constellation draws from (and beyond it).
#include <gtest/gtest.h>

#include <cmath>

#include "src/orbit/numerical.h"
#include "src/orbit/sgp4.h"
#include "src/orbit/tle.h"
#include "src/util/constants.h"

namespace dgs::orbit {
namespace {

struct OrbitCase {
  double alt_km;
  double inclination_deg;
  double eccentricity;
  double bstar;
};

Tle make_tle(const OrbitCase& c) {
  Tle tle;
  tle.satnum = 99000;
  tle.intl_designator = "25001A";
  tle.epoch = util::Epoch(util::DateTime{2025, 6, 1, 0, 0, 0.0});
  const double a = util::wgs72::kEarthRadiusKm + c.alt_km;
  const double n_rad_s =
      std::sqrt(util::wgs72::kMu / (a * a * a));
  tle.mean_motion_revs_per_day = n_rad_s * 86400.0 / util::kTwoPi;
  tle.inclination_deg = c.inclination_deg;
  tle.raan_deg = 123.4;
  tle.eccentricity = c.eccentricity;
  tle.arg_perigee_deg = 45.6;
  tle.mean_anomaly_deg = 210.7;
  tle.bstar = c.bstar;
  return tle;
}

class Sgp4Envelope : public ::testing::TestWithParam<OrbitCase> {};

TEST_P(Sgp4Envelope, RadiusStaysInEllipseBand) {
  const Tle tle = make_tle(GetParam());
  const Sgp4 prop(tle);
  const double a = tle.semi_major_axis_km();
  const double e = tle.eccentricity;
  for (double t = 0.0; t <= 1440.0; t += 31.0) {
    const double r = prop.propagate(t).position_km.norm();
    EXPECT_GT(r, a * (1.0 - e) - 25.0) << "t=" << t;
    EXPECT_LT(r, a * (1.0 + e) + 25.0) << "t=" << t;
  }
}

TEST_P(Sgp4Envelope, AgreesWithRk4OverTwoOrbits) {
  const Tle tle = make_tle(GetParam());
  const Sgp4 prop(tle);
  const TemeState s0 = prop.propagate(0.0);
  const double horizon_min = 2.0 * prop.period_minutes();

  StateVector sv{s0.position_km, s0.velocity_km_s};
  sv = propagate_rk4_j2(sv, horizon_min * 60.0, 5.0);
  const TemeState s1 = prop.propagate(horizon_min);
  // Drag over 2 orbits is < 100 m for these B*; J3/J4 differences stay in
  // the km range.
  EXPECT_LT((s1.position_km - sv.position_km).norm(), 8.0)
      << "alt=" << GetParam().alt_km << " inc=" << GetParam().inclination_deg;
}

TEST_P(Sgp4Envelope, TleTextRoundTripPreservesTrajectory) {
  const Tle tle = make_tle(GetParam());
  const Tle back =
      parse_tle(format_tle_line1(tle), format_tle_line2(tle));
  const Sgp4 p1(tle), p2(back);
  for (double t : {0.0, 47.0, 360.0}) {
    const double err =
        (p1.propagate(t).position_km - p2.propagate(t).position_km).norm();
    // Text truncation (1e-8 rev/day, 1e-4 deg) costs at most ~200 m here.
    EXPECT_LT(err, 0.5) << "t=" << t;
  }
}

TEST_P(Sgp4Envelope, GroundSpeedIsLeoTypical) {
  const Sgp4 prop(make_tle(GetParam()));
  for (double t : {0.0, 200.0, 777.0}) {
    const double v = prop.propagate(t).velocity_km_s.norm();
    EXPECT_GT(v, 7.2) << "t=" << t;
    EXPECT_LT(v, 8.1) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LeoEnvelope, Sgp4Envelope,
    ::testing::Values(
        OrbitCase{450.0, 97.2, 0.0005, 3e-5},   // low SSO
        OrbitCase{600.0, 97.8, 0.0020, 1e-5},   // high SSO
        OrbitCase{500.0, 51.6, 0.0010, 5e-5},   // ISS rideshare
        OrbitCase{550.0, 82.0, 0.0015, 2e-5},   // high inclination
        OrbitCase{480.0, 66.0, 0.0008, 4e-5},   // mid inclination
        OrbitCase{420.0, 45.0, 0.0025, 6e-5},   // low inclination
        OrbitCase{590.0, 89.9, 0.0003, 1e-5},   // near-polar
        OrbitCase{520.0, 97.5, 0.0100, 3e-5},   // slightly eccentric
        OrbitCase{700.0, 98.2, 0.0012, 8e-6},   // upper LEO
        OrbitCase{380.0, 51.6, 0.0005, 9e-5})); // low + draggy

}  // namespace
}  // namespace dgs::orbit
