// TLE catalog and station CSV I/O: round trips, format tolerance, errors.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/groundseg/io.h"
#include "src/groundseg/network_gen.h"
#include "src/util/angles.h"

namespace dgs::groundseg {
namespace {

constexpr const char* kIssL1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
constexpr const char* kIssL2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";
constexpr const char* kVanguardL1 =
    "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
constexpr const char* kVanguardL2 =
    "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";

TEST(TleCatalog, ReadsTwoLineSets) {
  std::stringstream ss;
  ss << kIssL1 << "\n" << kIssL2 << "\n" << kVanguardL1 << "\n"
     << kVanguardL2 << "\n";
  const auto catalog = read_tle_catalog(ss);
  ASSERT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog[0].satnum, 25544);
  EXPECT_EQ(catalog[1].satnum, 5);
}

TEST(TleCatalog, ReadsThreeLineSetsWithCommentsAndBlanks) {
  std::stringstream ss;
  ss << "# catalog snapshot\n\nISS (ZARYA)\n" << kIssL1 << "\n" << kIssL2
     << "\n\n0 VANGUARD 1\n" << kVanguardL1 << "\n" << kVanguardL2 << "\n";
  const auto catalog = read_tle_catalog(ss);
  ASSERT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog[0].name, "ISS (ZARYA)");
  EXPECT_EQ(catalog[1].name, "VANGUARD 1");  // "0 " prefix stripped
}

TEST(TleCatalog, WriteReadRoundTrip) {
  NetworkOptions opts;
  opts.num_satellites = 25;
  const util::Epoch epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
  const auto sats = generate_constellation(opts, epoch);
  std::vector<orbit::Tle> catalog;
  for (const auto& s : sats) catalog.push_back(s.tle);

  std::stringstream ss;
  write_tle_catalog(ss, catalog);
  const auto back = read_tle_catalog(ss);
  ASSERT_EQ(back.size(), catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(back[i].satnum, catalog[i].satnum);
    EXPECT_EQ(back[i].name, catalog[i].name);
    EXPECT_NEAR(back[i].inclination_deg, catalog[i].inclination_deg, 1e-4);
    EXPECT_NEAR(back[i].mean_motion_revs_per_day,
                catalog[i].mean_motion_revs_per_day, 1e-7);
  }
}

TEST(TleCatalog, ReportsLineNumbersOnErrors) {
  std::stringstream dangling;
  dangling << kIssL1 << "\n";
  try {
    read_tle_catalog(dangling);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }

  std::stringstream orphan2;
  orphan2 << kIssL2 << "\n";
  EXPECT_THROW(read_tle_catalog(orphan2), std::invalid_argument);

  std::stringstream bad_checksum;
  std::string corrupted(kIssL2);
  corrupted[68] = '0';
  bad_checksum << kIssL1 << "\n" << corrupted << "\n";
  EXPECT_THROW(read_tle_catalog(bad_checksum), std::invalid_argument);
}

TEST(TleCatalog, MissingFileThrows) {
  EXPECT_THROW(load_tle_file("/nonexistent/catalog.tle"),
               std::invalid_argument);
}

TEST(StationCsv, WriteReadRoundTrip) {
  NetworkOptions opts;
  opts.num_stations = 30;
  const auto stations = generate_dgs_stations(opts);

  std::stringstream ss;
  write_station_csv(ss, stations);
  const auto back = read_station_csv(ss);
  ASSERT_EQ(back.size(), stations.size());
  for (std::size_t i = 0; i < stations.size(); ++i) {
    EXPECT_EQ(back[i].id, stations[i].id);
    EXPECT_EQ(back[i].name, stations[i].name);
    EXPECT_NEAR(back[i].location.latitude_rad,
                stations[i].location.latitude_rad, 1e-7);
    EXPECT_NEAR(back[i].location.longitude_rad,
                stations[i].location.longitude_rad, 1e-7);
    EXPECT_EQ(back[i].tx_capable, stations[i].tx_capable);
    EXPECT_NEAR(back[i].min_elevation_rad, stations[i].min_elevation_rad,
                1e-3);
    // ECEF cache must be refreshed on load.
    EXPECT_GT(back[i].ecef().norm(), 6300.0);
  }
}

TEST(StationCsv, ToleratesHeaderAndComments) {
  std::stringstream ss;
  ss << "id,name,lat_deg,lon_deg,alt_km,dish_m,tx_capable,min_el_deg\n"
     << "# comment\n"
     << "7,Testville,47.5,-122.3,0.05,1.00,1,10.0\n";
  const auto stations = read_station_csv(ss);
  ASSERT_EQ(stations.size(), 1u);
  EXPECT_EQ(stations[0].id, 7);
  EXPECT_TRUE(stations[0].tx_capable);
  EXPECT_NEAR(util::rad2deg(stations[0].location.latitude_rad), 47.5, 1e-9);
}

TEST(StationCsv, RejectsMalformedRows) {
  std::stringstream wrong_fields;
  wrong_fields << "1,OnlyThree,47.0\n";
  EXPECT_THROW(read_station_csv(wrong_fields), std::invalid_argument);

  std::stringstream bad_number;
  bad_number << "1,X,not-a-number,0,0,1,0,5\n";
  EXPECT_THROW(read_station_csv(bad_number), std::invalid_argument);

  std::stringstream bad_lat;
  bad_lat << "1,X,97.0,0,0,1,0,5\n";
  EXPECT_THROW(read_station_csv(bad_lat), std::invalid_argument);
}

}  // namespace
}  // namespace dgs::groundseg
