#include "src/orbit/tle.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::orbit {
namespace {

using util::kTwoPi;

[[noreturn]] void fail(const std::string& what) {
  DGS_ENSURE(false, "TLE parse error: " << what);
}

/// Extracts [start, start+len) as a trimmed string (columns are 0-based here;
/// the TLE format spec numbers columns from 1).
std::string field(std::string_view line, std::size_t start, std::size_t len) {
  if (line.size() < start + len) fail("line too short");
  std::string s(line.substr(start, len));
  const auto b = s.find_first_not_of(' ');
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(' ');
  return s.substr(b, e - b + 1);
}

double parse_double(std::string_view line, std::size_t start, std::size_t len,
                    const char* what) {
  const std::string s = field(line, start, len);
  if (s.empty()) return 0.0;
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) fail(std::string("trailing junk in ") + what);
    return v;
  } catch (const std::invalid_argument&) {
    fail(std::string("bad numeric field: ") + what);
  }
}

int parse_int(std::string_view line, std::size_t start, std::size_t len,
              const char* what) {
  const std::string s = field(line, start, len);
  if (s.empty()) return 0;
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos != s.size()) fail(std::string("trailing junk in ") + what);
    return v;
  } catch (const std::invalid_argument&) {
    fail(std::string("bad integer field: ") + what);
  }
}

/// Parses the implied-decimal exponent notation used for nddot and B*,
/// e.g. " 28098-4" == 0.28098e-4 and "-11606-4" == -0.11606e-4.
double parse_exp_field(std::string_view line, std::size_t start,
                       std::size_t len) {
  std::string s = field(line, start, len);
  if (s.empty()) return 0.0;
  double sign = 1.0;
  std::size_t i = 0;
  if (s[i] == '+' || s[i] == '-') {
    if (s[i] == '-') sign = -1.0;
    ++i;
  }
  // Mantissa digits up to the exponent sign.
  std::string mantissa, expo;
  for (; i < s.size(); ++i) {
    if (s[i] == '+' || s[i] == '-') {
      expo = s.substr(i);
      break;
    }
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
      fail("bad exponent-notation field");
    }
    mantissa += s[i];
  }
  if (mantissa.empty()) return 0.0;
  const double m = std::stod("0." + mantissa);
  const int e = expo.empty() ? 0 : std::stoi(expo);
  return sign * m * std::pow(10.0, e);
}

}  // namespace

int tle_checksum(std::string_view line) {
  int sum = 0;
  const std::size_t n = std::min<std::size_t>(line.size(), 68);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = line[i];
    if (std::isdigit(static_cast<unsigned char>(c))) sum += c - '0';
    if (c == '-') sum += 1;
  }
  return sum % 10;
}

Tle parse_tle(std::string_view line1, std::string_view line2) {
  if (line1.size() < 69 || line2.size() < 69) fail("lines must be 69 columns");
  if (line1[0] != '1') fail("line 1 must start with '1'");
  if (line2[0] != '2') fail("line 2 must start with '2'");
  for (auto [line, name] : {std::pair{line1, "line 1"}, {line2, "line 2"}}) {
    const char expect = line[68];
    if (!std::isdigit(static_cast<unsigned char>(expect)) ||
        tle_checksum(line) != expect - '0') {
      fail(std::string("checksum mismatch on ") + name);
    }
  }

  Tle t;
  t.satnum = parse_int(line1, 2, 5, "satnum");
  if (t.satnum != parse_int(line2, 2, 5, "satnum(line2)")) {
    fail("catalog numbers disagree between lines");
  }
  t.classification = line1[7];
  t.intl_designator = field(line1, 9, 8);

  const int epoch_yy = parse_int(line1, 18, 2, "epoch year");
  const double epoch_doy = parse_double(line1, 20, 12, "epoch day");
  if (epoch_doy < 1.0 || epoch_doy >= 367.0) fail("epoch day out of range");
  t.epoch = util::Epoch::from_tle_epoch(epoch_yy, epoch_doy);

  t.ndot_over_2 = parse_double(line1, 33, 10, "ndot/2");
  t.nddot_over_6 = parse_exp_field(line1, 44, 8);
  t.bstar = parse_exp_field(line1, 53, 8);
  t.element_set_number = parse_int(line1, 64, 4, "element set number");

  t.inclination_deg = parse_double(line2, 8, 8, "inclination");
  t.raan_deg = parse_double(line2, 17, 8, "raan");
  const std::string ecc = field(line2, 26, 7);
  t.eccentricity = ecc.empty() ? 0.0 : std::stod("0." + ecc);
  t.arg_perigee_deg = parse_double(line2, 34, 8, "arg perigee");
  t.mean_anomaly_deg = parse_double(line2, 43, 8, "mean anomaly");
  t.mean_motion_revs_per_day = parse_double(line2, 52, 11, "mean motion");
  t.rev_number = parse_int(line2, 63, 5, "rev number");

  if (t.inclination_deg < 0.0 || t.inclination_deg > 180.0) {
    fail("inclination out of [0, 180]");
  }
  if (t.eccentricity < 0.0 || t.eccentricity >= 1.0) {
    fail("eccentricity out of [0, 1)");
  }
  if (t.mean_motion_revs_per_day <= 0.0) fail("non-positive mean motion");
  return t;
}

Tle parse_tle_3le(std::string_view name_line, std::string_view line1,
                  std::string_view line2) {
  Tle t = parse_tle(line1, line2);
  std::string name(name_line);
  // Celestrak prefixes name lines with "0 " in some exports.
  if (name.rfind("0 ", 0) == 0) name = name.substr(2);
  const auto e = name.find_last_not_of(" \r\n");
  t.name = e == std::string::npos ? "" : name.substr(0, e + 1);
  return t;
}

double Tle::semi_major_axis_km() const {
  const double n_rad_per_sec =
      mean_motion_revs_per_day * kTwoPi / util::kSecondsPerDay;
  return std::cbrt(util::wgs72::kMu / (n_rad_per_sec * n_rad_per_sec));
}

double Tle::perigee_altitude_km() const {
  return semi_major_axis_km() * (1.0 - eccentricity) -
         util::wgs72::kEarthRadiusKm;
}

double Tle::apogee_altitude_km() const {
  return semi_major_axis_km() * (1.0 + eccentricity) -
         util::wgs72::kEarthRadiusKm;
}

namespace {

/// Formats a value into the implied-decimal exponent notation (8 cols),
/// e.g. 0.28098e-4 -> " 28098-4".
std::string format_exp_field(double v) {
  char buf[16];
  if (v == 0.0) return " 00000+0";
  const double a = std::fabs(v);
  int e = static_cast<int>(std::ceil(std::log10(a) + 1e-12));
  double m = a / std::pow(10.0, e);
  // Keep mantissa in [0.1, 1).
  if (m >= 1.0) {
    m /= 10.0;
    ++e;
  }
  if (m < 0.1) {
    m *= 10.0;
    --e;
  }
  const int digits = static_cast<int>(std::llround(m * 100000.0));
  std::snprintf(buf, sizeof(buf), "%c%05d%+d", v < 0 ? '-' : ' ',
                digits >= 100000 ? 99999 : digits, e);
  return buf;
}

void append_checksum(std::string& line) {
  line += static_cast<char>('0' + tle_checksum(line));
}

}  // namespace

std::string format_tle_line1(const Tle& tle) {
  const util::DateTime dt = tle.epoch.utc();
  const int yy = dt.year % 100;
  const double jd_jan1 =
      util::julian_date(util::DateTime{dt.year, 1, 1, 0, 0, 0.0});
  const double doy = tle.epoch.jd() - jd_jan1 + 1.0;

  char buf[80];
  // ndot/2 field: sign + ".8 decimals" with the leading zero dropped.
  char ndot[16];
  std::snprintf(ndot, sizeof(ndot), "%+.8f", tle.ndot_over_2);
  std::string ndot_s(ndot);
  // "+0.00002182" -> " .00002182" ; "-0.0000..." -> "-.0000..."
  ndot_s.erase(1, 1);
  if (ndot_s[0] == '+') ndot_s[0] = ' ';

  std::snprintf(buf, sizeof(buf), "1 %05d%c %-8s %02d%012.8f %s %s %s 0 %4d",
                tle.satnum, tle.classification, tle.intl_designator.c_str(),
                yy, doy, ndot_s.c_str(),
                format_exp_field(tle.nddot_over_6).c_str(),
                format_exp_field(tle.bstar).c_str(),
                tle.element_set_number % 10000);
  std::string line(buf);
  line.resize(68, ' ');
  append_checksum(line);
  return line;
}

std::string format_tle_line2(const Tle& tle) {
  char buf[80];
  const long long ecc7 = std::llround(tle.eccentricity * 1e7);
  std::snprintf(buf, sizeof(buf),
                "2 %05d %8.4f %8.4f %07lld %8.4f %8.4f %11.8f%5d",
                tle.satnum, tle.inclination_deg, tle.raan_deg, ecc7,
                tle.arg_perigee_deg, tle.mean_anomaly_deg,
                tle.mean_motion_revs_per_day, tle.rev_number % 100000);
  std::string line(buf);
  line.resize(68, ' ');
  append_checksum(line);
  return line;
}

}  // namespace dgs::orbit
