#include "src/netdesign/pareto.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

#include "src/core/run_artifact.h"
#include "src/util/check.h"

namespace dgs::netdesign {
namespace {

/// Install cost of a selection (pool indices).
double selection_cost(const std::vector<CandidateSite>& pool,
                      const std::vector<int>& selected) {
  double cost = 0.0;
  for (int c : selected) {
    DGS_CHECK(c >= 0 && c < static_cast<int>(pool.size()),
              "selection outside the pool");
    cost += pool[static_cast<std::size_t>(c)].install_cost;
  }
  return cost;
}

long long identity_int(const FrontIdentity& id, std::string_view key) {
  if (key == "pool_size") return id.pool_size;
  if (key == "pool_seed") return id.pool_seed;
  if (key == "num_satellites") return id.num_satellites;
  if (key == "network_seed") return id.network_seed;
  DGS_CHECK(key == "weather_seed", "unmapped integer identity field");
  return id.weather_seed;
}

double identity_real(const FrontIdentity& id, std::string_view key) {
  if (key == "duration_hours") return id.duration_hours;
  DGS_CHECK(key == "step_seconds", "unmapped real identity field");
  return id.step_seconds;
}

double point_real(const FrontPoint& p, std::string_view key) {
  if (key == "cost") return p.cost;
  if (key == "objective_gb") return p.objective_gb;
  if (key == "latency_p50_min") return p.eval.latency_p50_min;
  if (key == "latency_p90_min") return p.eval.latency_p90_min;
  if (key == "backlog_end_gb") return p.eval.backlog_end_gb;
  DGS_CHECK(key == "delivered_fraction", "unmapped real point field");
  return p.eval.delivered_fraction;
}

std::string joined_ids(const std::vector<int>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

}  // namespace

SubsetEvaluator::SubsetEvaluator(
    const std::vector<groundseg::SatelliteConfig>& sats,
    const std::vector<CandidateSite>& pool,
    const weather::WeatherProvider* actual_weather,
    const core::SimulationOptions& base)
    : sats_(&sats), pool_(&pool), weather_(actual_weather), base_(base) {
  DGS_ENSURE(!sats.empty() && !pool.empty(),
             "sats=" << sats.size() << " pool=" << pool.size());
}

EvalPoint SubsetEvaluator::evaluate(
    const std::vector<int>& pool_indices) const {
  DGS_ENSURE(!pool_indices.empty(), "empty subset");
  core::SimulationOptions opts = base_;
  opts.station_subset.clear();
  opts.station_subset.reserve(pool_indices.size());
  for (int c : pool_indices) {
    DGS_ENSURE(c >= 0 && c < static_cast<int>(pool_->size()),
               "pool index " << c << " outside the pool");
    opts.station_subset.push_back(
        (*pool_)[static_cast<std::size_t>(c)].station.id);
  }
  core::Simulator sim(*sats_, pool_stations(*pool_), weather_, opts);
  const core::SimulationResult r = sim.run();

  EvalPoint p;
  if (r.latency_minutes.empty()) {
    p.latency_p50_min = opts.duration_hours * 60.0;
    p.latency_p90_min = opts.duration_hours * 60.0;
  } else {
    p.latency_p50_min = r.latency_minutes.percentile(50.0);
    p.latency_p90_min = r.latency_minutes.percentile(90.0);
  }
  for (const core::SatelliteOutcome& s : r.per_satellite) {
    p.backlog_end_gb += s.backlog_bytes / 1e9;
  }
  p.delivered_fraction = r.delivered_fraction();
  return p;
}

std::vector<FrontPoint> budget_sweep(const ValueTable& table,
                                     const std::vector<CandidateSite>& pool,
                                     const SubsetEvaluator& evaluator,
                                     const SweepOptions& opts,
                                     obs::Registry* metrics) {
  DGS_ENSURE(!opts.ks.empty(), "no station counts to sweep");
  for (std::size_t i = 0; i < opts.ks.size(); ++i) {
    DGS_ENSURE_GE(opts.ks[i], 1);
    DGS_ENSURE(opts.ks[i] <= static_cast<int>(pool.size()),
               "K=" << opts.ks[i] << " exceeds pool size " << pool.size());
    if (i > 0) {
      DGS_ENSURE(opts.ks[i] > opts.ks[i - 1],
                 "station counts must be strictly ascending");
    }
  }

  obs::Counter* points_metric = nullptr;
  obs::Counter* evals_metric = nullptr;
  if (metrics != nullptr) {
    points_metric =
        metrics->counter("dgs_netdesign_front_points_total",
                         "Pareto-front points emitted by budget sweeps");
    evals_metric = metrics->counter(
        "dgs_netdesign_sim_evals_total",
        "Full-simulator subset evaluations (local search + fronts)");
  }

  std::vector<FrontPoint> points;
  for (int k : opts.ks) {
    GreedyOptions greedy_opts;
    greedy_opts.k = k;
    greedy_opts.budget = opts.budget;
    const GreedyResult greedy = lazy_greedy(table, greedy_opts, metrics);
    if (greedy.selected.empty()) continue;  // Budget admits nothing.

    std::vector<int> selected = greedy.selected;
    std::sort(selected.begin(), selected.end());
    FrontPoint point;
    point.objective_gb = greedy.objective_gb;
    if (opts.refine) {
      LocalSearchOptions local = opts.local;
      local.budget = opts.budget;
      const LocalSearchResult refined = local_search(
          table, selected,
          [&](const std::vector<int>& s) { return evaluator.evaluate(s); },
          local, metrics);
      selected = refined.selected;
      point.eval = refined.eval;
    } else {
      point.eval = evaluator.evaluate(selected);
      if (evals_metric != nullptr) evals_metric->inc();
    }
    // A binding budget can select fewer than K stations, collapsing this
    // point onto an earlier one; keep only the first of each count so
    // the emitted K axis stays strictly ascending.
    if (!points.empty() &&
        points.back().station_ids.size() >= selected.size()) {
      continue;
    }
    point.cost = selection_cost(pool, selected);
    point.station_ids.reserve(selected.size());
    for (int c : selected) {
      point.station_ids.push_back(
          pool[static_cast<std::size_t>(c)].station.id);
    }
    std::sort(point.station_ids.begin(), point.station_ids.end());
    points.push_back(std::move(point));
    if (points_metric != nullptr) points_metric->inc();
  }

  // Dominance flags: point a is dominated when some b is no worse on
  // cost, p90 latency, and backlog, and strictly better on one.
  for (std::size_t a = 0; a < points.size(); ++a) {
    for (std::size_t b = 0; b < points.size(); ++b) {
      if (a == b) continue;
      const FrontPoint& pa = points[a];
      const FrontPoint& pb = points[b];
      const bool no_worse =
          pb.cost <= pa.cost &&
          pb.eval.latency_p90_min <= pa.eval.latency_p90_min &&
          pb.eval.backlog_end_gb <= pa.eval.backlog_end_gb;
      const bool strictly =
          pb.cost < pa.cost ||
          pb.eval.latency_p90_min < pa.eval.latency_p90_min ||
          pb.eval.backlog_end_gb < pa.eval.backlog_end_gb;
      if (no_worse && strictly) {
        points[a].dominated = true;
        break;
      }
    }
  }
  return points;
}

void write_netdesign_front(std::ostream& out, const FrontIdentity& identity,
                           const std::vector<FrontPoint>& points) {
  DGS_ENSURE(!points.empty(), "empty front");
  for (std::size_t i = 1; i < points.size(); ++i) {
    DGS_ENSURE(points[i].station_ids.size() >
                   points[i - 1].station_ids.size(),
               "front points must be strictly ascending in station count");
  }

  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"schema_version\": %d,\n  \"artifact\": "
                "\"netdesign_front\",\n",
                core::kRunArtifactSchemaVersion);
  out << buf;
  for (const core::NetdesignFieldSpec& f : core::netdesign_identity_specs()) {
    switch (f.kind) {
      case core::NetdesignFieldKind::kNInt:
        std::snprintf(buf, sizeof(buf), "  \"%s\": %lld,\n", f.key,
                      identity_int(identity, f.key));
        break;
      case core::NetdesignFieldKind::kNReal:
        std::snprintf(buf, sizeof(buf), "  \"%s\": %.6f,\n", f.key,
                      identity_real(identity, f.key));
        break;
      default:
        DGS_CHECK(false, "identity fields are numbers");
    }
    out << buf;
  }
  out << "  \"points\": {\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FrontPoint& p = points[i];
    std::snprintf(buf, sizeof(buf), "    \"k_%03d\": {\n",
                  static_cast<int>(p.station_ids.size()));
    out << buf;
    const auto specs = core::netdesign_point_specs();
    for (std::size_t j = 0; j < specs.size(); ++j) {
      const core::NetdesignFieldSpec& f = specs[j];
      switch (f.kind) {
        case core::NetdesignFieldKind::kNInt:
          std::snprintf(buf, sizeof(buf), "      \"%s\": %lld", f.key,
                        static_cast<long long>(p.station_ids.size()));
          break;
        case core::NetdesignFieldKind::kNReal:
          std::snprintf(buf, sizeof(buf), "      \"%s\": %.6f", f.key,
                        point_real(p, f.key));
          break;
        case core::NetdesignFieldKind::kNBool:
          std::snprintf(buf, sizeof(buf), "      \"%s\": %s", f.key,
                        p.dominated ? "true" : "false");
          break;
        case core::NetdesignFieldKind::kNString:
          out << "      \"" << f.key << "\": \"" << joined_ids(p.station_ids)
              << "\"";
          buf[0] = '\0';
          break;
      }
      out << buf << (j + 1 < specs.size() ? ",\n" : "\n");
    }
    out << (i + 1 < points.size() ? "    },\n" : "    }\n");
  }
  out << "  }\n}\n";
}

}  // namespace dgs::netdesign
