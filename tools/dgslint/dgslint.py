#!/usr/bin/env python3
"""dgslint: project-specific static analysis for the DGS determinism and
contract rules (DESIGN.md §13).

Every headline claim this repo makes — byte-identical results across
thread counts, campaign confidence intervals over seeded runs — rests on
the determinism contract of DESIGN.md §9.  That contract used to be
enforced only by after-the-fact byte-equality tests; dgslint makes it
machine-checked at the source level, before a stray `rand()` or an
`unordered_map` iteration in an output path ever reaches a test failure.

Rules (see DESIGN.md §13 for the full table and rationale):

  R1  banned nondeterminism sources (rand, std::random_device, wall
      clocks, argless time(), locale-dependent formatting, raw std
      engines/distributions) outside the sanctioned RNG modules.
  R2  no iteration over std::unordered_map/std::unordered_set in any
      file on an artifact/metrics/event output path (hash order would
      leak into artifacts).
  R3  no raw std::thread / std::async / OpenMP outside
      src/util/thread_pool.* — all parallelism goes through the
      deterministic fork-join pool.
  R4  no bare assert( or ad-hoc throw in src/ — DGS_CHECK / DGS_DCHECK /
      DGS_ENSURE and the structured OptionsError/ArtifactError values
      are the only error channels.
  R5  metric/event/JSON-key hygiene: registered metric names match
      dgs_[a-z0-9_]+ and summary keys used in code appear in the
      SummaryFieldSpec table of src/core/run_artifact.cpp.
  R6  public headers are self-contained: every src/**/*.h carries
      #pragma once (the compile-level check is the CMake
      dgs_header_selfcontained target, which builds one TU per header).
  SUP suppression-comment hygiene: every `dgslint: allow(...)` names
      known rules and carries a `-- reason`.

Suppressions: append to the offending line, or place on the line above:

    foo();  // dgslint: allow(R1) -- reason why this one is fine
    // dgslint: allow(R4,R1) -- reasons may cover several rules

Baseline: grandfathered findings live in tools/dgslint/baseline.json as
{"rule", "path", "count"} entries; up to `count` findings of that rule in
that file are reported as baselined instead of failing.  The baseline
must stay empty for src/ (enforced by policy, not by this tool).

Exit codes: 0 clean, 1 findings (or stale baseline in --verify-baseline
mode), 2 usage/configuration error.  Dependency-free: stdlib only.
"""

import argparse
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Configuration: scanned trees and per-rule whitelists (repo-relative,
# forward-slash paths).  Whitelisted files are the *implementations* of
# the sanctioned facility a rule funnels everyone else toward.

SCAN_ROOTS = ("src", "bench", "examples", "tests")
SOURCE_EXTENSIONS = (".h", ".cpp")
# The fixture corpus exercises the rules on purpose.
EXCLUDED_DIRS = ("tests/dgslint_fixtures",)

WHITELIST = {
    # Sanctioned RNG wrappers: the seeded engine behind util::Rng and the
    # PCG32/SplitMix64 streams of the fault subsystem — plus the poison
    # header, which must spell every banned token to ban it.
    "R1": ("src/util/rng.h", "src/faults/fault_rng.h",
           "src/util/determinism.h"),
    # The deterministic fork-join pool is the one owner of raw threads.
    "R3": ("src/util/thread_pool.h", "src/util/thread_pool.cpp"),
    # The contract layer itself must throw/abort to implement DGS_ENSURE.
    "R4": ("src/util/check.h", "src/util/check.cpp"),
}

# R4 applies to src/ only: tests legitimately throw to exercise error
# paths, and bench/example binaries surface environment failures ad hoc.
R4_SCOPE = "src/"

# R2: a file is on an output path when it lives in an artifact/metrics
# module or includes one of their headers.
OUTPUT_PATH_DIRS = ("src/obs/", "src/campaign/", "src/netdesign/")
OUTPUT_PATH_FILES = (
    "src/core/run_artifact.cpp",
    "src/core/run_artifact.h",
    "src/core/report.h",
    "src/core/checkpoint.cpp",
    "src/core/checkpoint.h",
    "src/core/session.cpp",
    "src/core/session.h",
)
OUTPUT_PATH_INCLUDES = (
    "src/core/run_artifact.h",
    "src/core/report.h",
    "src/core/checkpoint.h",
    "src/core/session.h",
    "src/obs/metrics.h",
    "src/obs/events.h",
)

SUMMARY_TABLE_FILE = "src/core/run_artifact.cpp"

METRIC_NAME_RE = re.compile(r"^dgs_[a-z0-9_]+$")

RULE_TITLES = {
    "R1": "banned nondeterminism source",
    "R2": "unordered-container iteration on an output path",
    "R3": "raw threading outside the deterministic pool",
    "R4": "ad-hoc error channel in src/",
    "R5": "metric/summary-key hygiene",
    "R6": "header self-containment",
    "SUP": "malformed dgslint suppression",
}

SUPPRESSION_RE = re.compile(
    r"//\s*dgslint:\s*allow\(([^)]*)\)(\s*--\s*(\S.*))?")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # repo-relative, forward slashes
        self.line = line  # 1-based
        self.message = message
        self.baselined = False

    def to_json(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "baselined": self.baselined,
        }


class SourceFile:
    """One scanned file with raw text and two comment-stripped views.

    `code` has comments and string/char literals blanked (for token
    rules); `code_strings` has only comments blanked (for rules that
    inspect string literals).  Both preserve offsets and line breaks so
    line numbers can be derived from match positions.
    """

    def __init__(self, path, relpath, text):
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.code_strings = _strip(text, strip_strings=False)
        self.code = _strip(text, strip_strings=True)
        self.suppressions = _parse_suppressions(self.lines)

    def line_of(self, offset):
        return self.text.count("\n", 0, offset) + 1

    def allowed(self, rule, line):
        """True when `rule` is suppressed on `line` or the line above."""
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules and rule in rules:
                return True
        return False


def _strip(text, strip_strings):
    """Blanks comments (and optionally string/char literals) with spaces,
    preserving newlines and total length."""
    out = list(text)
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = "string"
                if strip_strings:
                    out[i] = " "
                i += 1
                continue
            if c == "'":
                state = "char"
                if strip_strings:
                    out[i] = " "
                i += 1
                continue
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
            else:
                out[i] = " "
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = "code"
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                if strip_strings:
                    out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                if strip_strings:
                    out[i] = " "
                state = "code"
            elif strip_strings and c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


def _parse_suppressions(lines):
    """Maps 1-based line number -> set of rule ids allowed there.

    Malformed suppressions map to the sentinel rule name "!bad:<detail>"
    so the SUP rule can report them.
    """
    result = {}
    for idx, line in enumerate(lines, start=1):
        m = SUPPRESSION_RE.search(line)
        if not m:
            if "dgslint:" in line and "allow" in line:
                result[idx] = {"!bad:unparseable dgslint comment"}
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        bad = {r for r in rules if r not in RULE_TITLES or r == "SUP"}
        if bad:
            result[idx] = {
                "!bad:unknown rule(s) " + ", ".join(sorted(bad))}
            continue
        if not m.group(3):
            result[idx] = {"!bad:missing '-- reason'"}
            continue
        result[idx] = rules
    return result


# ---------------------------------------------------------------------------
# Rule implementations.  Each checker takes (SourceFile, context) and
# yields Finding objects; suppression and baseline filtering happen in
# the driver.

R1_PATTERNS = (
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand() — draw from a seeded util::Rng or faults::Pcg32"),
    (re.compile(r"\b[dlm]rand48\b|\brandom_r\b"),
     "C library RNG — draw from a seeded util::Rng or faults::Pcg32"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is entropy, not a seed — use an explicit seed"),
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
     "wall clock — simulation time comes from StepClock/util::Epoch"),
    (re.compile(r"(?<![\w.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "argless time() — simulation time comes from StepClock/util::Epoch"),
    (re.compile(r"\b(setlocale|localtime|gmtime_r?|strftime|put_time)\b"
                r"|std::locale\b"),
     "locale/calendar formatting — artifact text must be locale-free"),
    (re.compile(r"\b(mt19937(_64)?|default_random_engine|minstd_rand0?"
                r"|ranlux\w+|knuth_b)\b"),
     "raw std engine — only util::Rng / faults::Pcg32 streams"),
    (re.compile(r"\b(uniform_(real|int)|normal|exponential|bernoulli|"
                r"poisson|geometric|binomial)_distribution\b"),
     "std distributions are implementation-defined — use util::Rng"),
)


def check_r1(f, ctx):
    del ctx
    for pattern, why in R1_PATTERNS:
        for m in pattern.finditer(f.code):
            yield Finding("R1", f.relpath, f.line_of(m.start()),
                          "%s (matched '%s')" % (why, m.group(0).strip()))


UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;(){]*?>\s+(\w+)\s*[;={(\[]")
UNORDERED_IN_FOR_RE = re.compile(r"\bfor\s*\([^;)]*unordered_(?:map|set)\b")


def _is_output_path(f):
    rel = f.relpath
    if rel in OUTPUT_PATH_FILES:
        return True
    if any(rel.startswith(d) for d in OUTPUT_PATH_DIRS):
        return True
    return any('#include "%s"' % inc in f.text
               for inc in OUTPUT_PATH_INCLUDES)


def check_r2(f, ctx):
    del ctx
    if not _is_output_path(f):
        return
    why = ("hash order would leak into artifacts/metrics/events — "
           "use a sorted or vector container on output paths")
    for m in UNORDERED_IN_FOR_RE.finditer(f.code):
        yield Finding("R2", f.relpath, f.line_of(m.start()), why)
    names = {m.group(1) for m in UNORDERED_DECL_RE.finditer(f.code)}
    for name in sorted(names):
        iter_re = re.compile(
            r"\bfor\s*\([^;)]*:\s*(?:\w+\.)*%s\s*\)|"
            r"\b%s\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\(" % (name, name))
        for m in iter_re.finditer(f.code):
            if UNORDERED_IN_FOR_RE.match(m.group(0)):
                continue  # already reported above
            yield Finding("R2", f.relpath, f.line_of(m.start()),
                          "iteration over unordered container '%s' — %s"
                          % (name, why))


R3_PATTERNS = (
    (re.compile(r"\bstd::j?thread\b"),
     "raw std::thread — parallelism goes through util::ThreadPool"),
    (re.compile(r"\bstd::async\b"),
     "std::async — parallelism goes through util::ThreadPool"),
    (re.compile(r"#\s*pragma\s+omp\b|#\s*include\s*<omp\.h>"),
     "OpenMP — parallelism goes through util::ThreadPool"),
    (re.compile(r"\bpthread_create\b"),
     "raw pthreads — parallelism goes through util::ThreadPool"),
)


def check_r3(f, ctx):
    del ctx
    for pattern, why in R3_PATTERNS:
        for m in pattern.finditer(f.code):
            yield Finding("R3", f.relpath, f.line_of(m.start()), why)


R4_ASSERT_RE = re.compile(r"(?<!static_)\bassert\s*\(")
R4_THROW_RE = re.compile(r"\bthrow\b")


def check_r4(f, ctx):
    del ctx
    if not f.relpath.startswith(R4_SCOPE):
        return
    for m in R4_ASSERT_RE.finditer(f.code):
        yield Finding("R4", f.relpath, f.line_of(m.start()),
                      "bare assert() — use DGS_CHECK/DGS_DCHECK")
    for m in R4_THROW_RE.finditer(f.code):
        yield Finding(
            "R4", f.relpath, f.line_of(m.start()),
            "ad-hoc throw — route errors through DGS_ENSURE or a "
            "structured *Error value (allow(R4) with a reason for "
            "documented exception contracts)")


METRIC_CALL_RE = re.compile(
    r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
SUMMARY_KEY_USE_RE = re.compile(r"\.\s*(?:scalar|stats)\s*\(\s*\"([^\"]*)\"")
SUMMARY_SPEC_RE = re.compile(r"\{\s*\"([A-Za-z0-9_]+)\"\s*,\s*k(?:Int|Real|"
                             r"Stats|Tenants)\s*\}")


def check_r5(f, ctx):
    for m in METRIC_CALL_RE.finditer(f.code_strings):
        name = m.group(1)
        if not METRIC_NAME_RE.match(name):
            yield Finding(
                "R5", f.relpath, f.line_of(m.start()),
                "metric name '%s' does not match dgs_[a-z0-9_]+" % name)
    summary_keys = ctx.get("summary_keys")
    if summary_keys is None:
        return
    for m in SUMMARY_KEY_USE_RE.finditer(f.code_strings):
        key = m.group(1)
        if key not in summary_keys:
            yield Finding(
                "R5", f.relpath, f.line_of(m.start()),
                "summary key '%s' is not in the SummaryFieldSpec table "
                "of %s" % (key, SUMMARY_TABLE_FILE))


def check_r6(f, ctx):
    del ctx
    if not (f.relpath.startswith("src/") and f.relpath.endswith(".h")):
        return
    if "#pragma once" not in f.text:
        yield Finding("R6", f.relpath, 1,
                      "public header without #pragma once (the "
                      "dgs_header_selfcontained CMake target compiles "
                      "each header standalone)")


def check_sup(f, ctx):
    del ctx
    for line, rules in sorted(f.suppressions.items()):
        for r in rules:
            if r.startswith("!bad:"):
                yield Finding("SUP", f.relpath, line,
                              "malformed suppression: %s — use "
                              "'// dgslint: allow(R<n>) -- reason'"
                              % r[len("!bad:"):])


CHECKERS = (check_r1, check_r2, check_r3, check_r4, check_r5, check_r6,
            check_sup)


# ---------------------------------------------------------------------------
# Driver.

def iter_source_files(root, only_paths=None):
    if only_paths:
        for p in only_paths:
            rel = os.path.relpath(os.path.abspath(p), root).replace(
                os.sep, "/")
            yield p, rel
        return
    for scan_root in SCAN_ROOTS:
        top = os.path.join(root, scan_root)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            dirnames[:] = [
                d for d in sorted(dirnames)
                if not any((rel_dir + "/" + d).startswith(e) or
                           (rel_dir + "/" + d) == e
                           for e in EXCLUDED_DIRS)]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield (os.path.join(dirpath, name),
                           rel_dir + "/" + name)


def load_summary_keys(root):
    """Parses the SummaryFieldSpec table out of run_artifact.cpp.

    Returns None when the file is absent (fixture roots without an R5
    corpus) so the key check is skipped rather than failing spuriously.
    """
    path = os.path.join(root, SUMMARY_TABLE_FILE)
    if not os.path.isfile(path):
        return None
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    keys = {m.group(1) for m in SUMMARY_SPEC_RE.finditer(text)}
    return keys or None


def load_baseline(path):
    if not path or not os.path.isfile(path):
        return []
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    entries = doc.get("entries", [])
    for e in entries:
        if not {"rule", "path", "count"} <= set(e):
            raise SystemExit(
                "dgslint: baseline entry missing rule/path/count: %r" % e)
    return entries


def apply_baseline(findings, entries):
    budget = {(e["rule"], e["path"]): int(e["count"]) for e in entries}
    for f in findings:
        key = (f.rule, f.path)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            f.baselined = True
    return findings


def verify_baseline(root, entries):
    """Entries for files that no longer exist are a failure (CI format
    job runs this so the baseline can only ever shrink truthfully)."""
    stale = [e for e in entries
             if not os.path.isfile(os.path.join(root, e["path"]))]
    for e in stale:
        print("dgslint: stale baseline entry: %s (%s) — file no longer "
              "exists" % (e["path"], e["rule"]))
    return len(stale) == 0


def scan(root, only_paths=None):
    ctx = {"summary_keys": load_summary_keys(root)}
    findings = []
    for path, rel in iter_source_files(root, only_paths):
        with open(path, encoding="utf-8") as fh:
            f = SourceFile(path, rel, fh.read())
        for checker in CHECKERS:
            for finding in checker(f, ctx):
                # SUP findings are themselves unsuppressable.
                if finding.rule != "SUP":
                    if f.relpath in WHITELIST.get(finding.rule, ()):
                        continue
                    if f.allowed(finding.rule, finding.line):
                        continue
                findings.append(finding)
    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    return findings


def emit(findings, fmt):
    active = [f for f in findings if not f.baselined]
    if fmt == "json":
        print(json.dumps({
            "tool": "dgslint",
            "findings": [f.to_json() for f in findings],
            "counts": {"active": len(active),
                       "baselined": len(findings) - len(active)},
        }, indent=2))
        return
    for f in findings:
        if fmt == "github" and not f.baselined:
            print("::error file=%s,line=%d,title=dgslint %s (%s)::%s"
                  % (f.path, f.line, f.rule, RULE_TITLES[f.rule],
                     f.message))
        else:
            tag = " [baselined]" if f.baselined else ""
            print("%s:%d: [%s]%s %s"
                  % (f.path, f.line, f.rule, tag, f.message))
    if fmt != "github":
        print("dgslint: %d finding(s), %d baselined"
              % (len(active), len(findings) - len(active)))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="dgslint", description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels above "
                             "this script)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: baseline.json next "
                             "to this script)")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text")
    parser.add_argument("--verify-baseline", action="store_true",
                        help="only check that baseline entries reference "
                             "files that still exist")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="restrict the scan to these files")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULE_TITLES):
            print("%-4s %s" % (rule, RULE_TITLES[rule]))
        return 0

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(script_dir, "..", ".."))
    baseline_path = args.baseline or os.path.join(script_dir,
                                                  "baseline.json")
    entries = load_baseline(baseline_path)

    if args.verify_baseline:
        return 0 if verify_baseline(root, entries) else 1

    findings = apply_baseline(scan(root, args.paths), entries)
    emit(findings, args.format)
    return 1 if any(not f.baselined for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
