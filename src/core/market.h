// Priority-access bidding (paper §3.1: "From a ground station perspective,
// the value function can be assigned by bidding for priority access";
// §3.3: adoption "hinges on appropriate economic incentives").
//
// Operators place per-station bid multipliers; the scheduler scales an
// edge's base value (from Phi) by the bid the satellite's operator holds
// at that station.  Higher bids buy more station time — bought, not taken:
// the stable matching still rules out defection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace dgs::core {

/// Scales the scheduler's edge values: (sat, station, base) -> value.
using EdgeValueModifier = std::function<double(int, int, double)>;

class BidMatrix {
 public:
  /// `operator_of[sat]` maps each satellite to its operator id.
  explicit BidMatrix(std::vector<int> operator_of);

  /// Sets the multiplier an operator bids at one station (> 0).
  void set_bid(int operator_id, int station, double multiplier);
  /// Sets the multiplier an operator bids network-wide.
  void set_default_bid(int operator_id, double multiplier);

  /// Effective multiplier for a satellite at a station (1.0 if unset).
  double multiplier(int sat, int station) const;

  int operator_of(int sat) const { return operator_of_.at(sat); }
  std::size_t num_satellites() const { return operator_of_.size(); }

  /// The scheduler hook.  The returned callable captures `this`; the
  /// matrix must outlive the scheduler run.
  EdgeValueModifier as_modifier() const;

 private:
  std::vector<int> operator_of_;
  std::map<int, double> default_bid_;                 ///< operator -> mult
  std::map<std::pair<int, int>, double> station_bid_; ///< (op, gs) -> mult
};

}  // namespace dgs::core
