// Service-mode micro-benchmarks (DESIGN.md §16): the per-quantum cost of
// Session::step() at paper scale, and the full snapshot -> restore round
// trip through the dgs.checkpoint.v1 artifact.  BM_SessionStep bounds the
// steady-state cost a service pays per scheduling quantum; BM_Checkpoint
// bounds how expensive "checkpoint every N minutes" is.  CI's bench-smoke
// lane gates both against bench/baseline.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>

#include "bench/bench_flags.h"
#include "bench/common.h"
#include "src/core/session.h"

namespace {

using namespace dgs;

int g_threads = 1;  // set by --threads in main()

struct ServiceScale {
  ServiceScale()
      : setup(bench::make_paper_setup()),
        wx(bench::kWeatherSeed, bench::kEpoch, 25.0) {
    opts = bench::day_sim();
    opts.parallel.num_threads = g_threads;
    opts.parallel.chunk_size = 8;
  }
  std::unique_ptr<core::Session> fresh() const {
    return std::make_unique<core::Session>(setup.sats, setup.dgs25, &wx,
                                           opts);
  }
  bench::Setup setup;
  weather::SyntheticWeatherProvider wx;
  core::SimulationOptions opts;
};

ServiceScale& fixture() {
  static ServiceScale ss;
  return ss;
}

void BM_SessionStep(benchmark::State& state) {
  ServiceScale& ss = fixture();
  std::unique_ptr<core::Session> session = ss.fresh();
  for (auto _ : state) {
    if (session->done()) {
      state.PauseTiming();
      session = ss.fresh();
      state.ResumeTiming();
    }
    session->step();
  }
}
BENCHMARK(BM_SessionStep)->Unit(benchmark::kMillisecond);

void BM_Checkpoint(benchmark::State& state) {
  ServiceScale& ss = fixture();
  std::unique_ptr<core::Session> session = ss.fresh();
  session->run_until_hours(1.0);  // A populated mid-run state.
  for (auto _ : state) {
    std::stringstream buf;
    session->snapshot(buf);
    std::unique_ptr<core::Session> restored = core::Session::restore(
        buf, ss.setup.sats, ss.setup.dgs25, &ss.wx, ss.opts);
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_Checkpoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  g_threads = dgs::bench::consume_threads_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
