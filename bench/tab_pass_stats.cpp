// E6 — §2 background numbers: pass geometry and per-pass volume.
//
// Paper §2 states: a typical contact lasts 7-10 minutes; each satellite
// does 2-3 passes per ground station per day (of varying quality); the
// best-known station sustains ~1.6 Gbps at the best link and can download
// up to 80 GB in a single pass.  This table regenerates those numbers from
// our orbit + link models.
#include <cstdio>

#include "bench/common.h"
#include "src/orbit/passes.h"
#include "src/util/angles.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;
  using util::deg2rad;
  using util::rad2deg;

  std::printf("=== E6: pass statistics vs paper Sec. 2 ===\n\n");
  const Setup setup = make_paper_setup();

  // Pass stats: SSO satellites against a polar baseline station.
  const auto& svalbard = setup.baseline.front();
  util::SampleSet durations_min, max_elev_deg, passes_per_day;

  int sso_examined = 0;
  for (const auto& sat : setup.sats) {
    if (std::fabs(sat.tle.inclination_deg - 97.5) > 2.0) continue;
    if (++sso_examined > 40) break;  // a representative subset
    const orbit::Sgp4 prop(sat.tle);
    orbit::PassPredictorOptions popts;
    popts.min_elevation_rad = deg2rad(5.0);
    const auto passes = orbit::predict_passes(
        prop, svalbard.location, kEpoch, kEpoch.plus_days(1.0), popts);
    passes_per_day.add(static_cast<double>(passes.size()));
    for (const auto& p : passes) {
      durations_min.add(p.duration_seconds() / 60.0);
      max_elev_deg.add(rad2deg(p.max_elevation_rad));
    }
  }

  std::printf("SSO satellites over %s (el > 5 deg, 24 h):\n",
              svalbard.name.c_str());
  std::printf("  passes/satellite/day: median %.0f (paper: polar sites see "
              "SSO sats nearly every orbit; mid-lat sites 2-3)\n",
              passes_per_day.median());
  print_percentiles("pass duration", durations_min, "min");
  print_percentiles("pass max elevation", max_elev_deg, "deg");

  // Mid-latitude station: the 2-3 passes/day regime the paper quotes.
  groundseg::GroundStation midlat;
  midlat.location = {deg2rad(48.2), deg2rad(11.6), 0.5};  // Munich-ish
  util::SampleSet mid_passes, mid_durations;
  sso_examined = 0;
  for (const auto& sat : setup.sats) {
    if (std::fabs(sat.tle.inclination_deg - 97.5) > 2.0) continue;
    if (++sso_examined > 40) break;
    const orbit::Sgp4 prop(sat.tle);
    orbit::PassPredictorOptions popts;
    popts.min_elevation_rad = deg2rad(10.0);
    const auto passes = orbit::predict_passes(
        prop, midlat.location, kEpoch, kEpoch.plus_days(1.0), popts);
    mid_passes.add(static_cast<double>(passes.size()));
    for (const auto& p : passes) {
      mid_durations.add(p.duration_seconds() / 60.0);
    }
  }
  std::printf("\nSSO satellites over a mid-latitude station (el > 10 deg):\n");
  std::printf("  passes/satellite/day: median %.0f (paper: 2-3)\n",
              mid_passes.median());
  print_percentiles("pass duration", mid_durations, "min");

  // Per-pass volume at the best station: 6 channels, 4 m dish.
  link::RadioSpec radio6;
  radio6.channels = 6;
  const link::ReceiveSystem& rx4 = svalbard.receiver;
  double best_rate = 0.0;
  double pass_bytes = 0.0;
  const double re = 6371.0, h = 550.0;
  for (double el_deg = 5.0; el_deg <= 90.0; el_deg += 1.0) {
    const double el = deg2rad(el_deg);
    const double range =
        std::sqrt((re + h) * (re + h) - re * re * std::cos(el) * std::cos(el)) -
        re * std::sin(el);
    link::PathConditions path;
    path.range_km = range;
    path.elevation_rad = el;
    path.site_latitude_rad = svalbard.location.latitude_rad;
    const auto b = link::evaluate_link(radio6, rx4, path);
    best_rate = std::max(best_rate, b.data_rate_bps);
  }
  // Integrate a representative 9-minute overhead pass (triangular elevation
  // profile peaking at 85 deg).
  const double pass_s = 9.0 * 60.0;
  for (double t = 0.0; t < pass_s; t += 5.0) {
    const double frac = 1.0 - std::fabs(2.0 * t / pass_s - 1.0);
    const double el = deg2rad(5.0 + 80.0 * frac);
    const double range =
        std::sqrt((re + h) * (re + h) - re * re * std::cos(el) * std::cos(el)) -
        re * std::sin(el);
    link::PathConditions path;
    path.range_km = range;
    path.elevation_rad = el;
    path.site_latitude_rad = svalbard.location.latitude_rad;
    const auto b = link::evaluate_link(radio6, rx4, path);
    pass_bytes += b.data_rate_bps * 5.0 / 8.0;
  }
  std::printf("\nBest-station link (6 channels, 4 m dish):\n");
  std::printf("  peak rate:            %.2f Gbps (paper: ~1.6 Gbps)\n",
              best_rate / 1e9);
  std::printf("  volume, 9-min zenith pass: %.1f GB (paper: up to 80 GB)\n",
              pass_bytes / 1e9);
  std::printf("  note: rate degrades toward the horizon, hence < peak x "
              "duration (paper Sec. 2 makes the same point)\n");
  return 0;
}
