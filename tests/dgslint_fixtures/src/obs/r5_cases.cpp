// dgslint fixture: R5 — metric-name and summary-key hygiene.
struct Registry {
  int* counter(const char*, const char*);
  int* gauge(const char*, const char*);
};
struct Summary {
  const int* scalar(const char*) const;
  const int* stats(const char*) const;
};

void r5_metrics(Registry& r) {
  r.counter("bad_counter_total", "fixture");   // finding: R5 bad name
  r.gauge("dgs_Bad_Gauge", "fixture");         // finding: R5 uppercase
  r.counter("dgs_good_total", "fixture");      // negative: well-formed
}

void r5_summary_keys(const Summary& s) {
  s.scalar("unknown_key");          // finding: R5 key not in the table
  s.scalar("delivered_fraction");   // negative: key is in the table
  s.stats("latency_minutes");       // negative: key is in the table
  // dgslint: allow(R5) -- fixture: suppressed unknown key
  s.stats("suppressed_key");
}
