// Metrics registry: counters, gauges, and fixed-bucket histograms with a
// Prometheus-style text exposition writer.
//
// The hot path is lock-free: every Counter/Histogram keeps one cache-line-
// aligned shard per thread slot (relaxed atomic adds, no false sharing), and
// a scrape folds the shards in ascending slot order.  The fold is
// deterministic under the DESIGN.md §9/§10 contract:
//
//   * counts incremented from inside parallel regions are exact small
//     integers, whose double sum is associative — any shard assignment
//     yields the same scraped value for any thread count;
//   * non-integer accumulations (byte totals, latency sums) are only ever
//     incremented from the simulation driver thread, so exactly one shard
//     is nonzero and the fold order is irrelevant.
//
// Metric objects are owned by their Registry and have stable addresses for
// the registry's lifetime; hot loops cache the pointers once and never take
// the registry lock again.  Naming follows the Prometheus convention
// documented in DESIGN.md §10: `dgs_<area>_<what>[_<unit>][_total]`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dgs::obs {

/// Number of per-thread shard slots; threads beyond this share slots
/// (atomically — correctness is unaffected, only contention).
inline constexpr int kMetricShards = 32;

namespace internal {
/// Stable per-thread shard slot in [0, kMetricShards): the first thread to
/// ask (the simulation driver) gets slot 0, workers get 1, 2, ...
int this_thread_shard();
}  // namespace internal

/// Monotonically increasing value (Prometheus counter).  `inc` is lock-free
/// and safe from any thread; `value` folds shards in ascending slot order.
class Counter {
 public:
  void inc(double v = 1.0) {
    shards_[static_cast<std::size_t>(internal::this_thread_shard())].cell
        .fetch_add(v, std::memory_order_relaxed);
  }
  double value() const {
    double sum = 0.0;
    for (const Shard& s : shards_) {
      sum += s.cell.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Checkpoint restore: replaces the folded value, placing it in the
  /// *calling thread's* shard so a restored driver thread continues the
  /// exact fetch_add sequence an uninterrupted run would have produced
  /// (driver-thread doubles live in one shard; worker increments are
  /// exact integers, so the fold stays bit-identical — DESIGN.md §16).
  /// Not safe concurrently with inc().
  void reset_to(double v);

 private:
  struct alignas(64) Shard {
    std::atomic<double> cell{0.0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-write-wins instantaneous value (Prometheus gauge).  Written by the
/// driver thread; readable from anywhere.
class Gauge {
 public:
  void set(double v) { cell_.store(v, std::memory_order_relaxed); }
  double value() const { return cell_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> cell_{0.0};
};

/// Fixed-bucket histogram (Prometheus histogram: cumulative `le` buckets
/// plus `_sum` and `_count`).  Bucket upper bounds are set at registration
/// and immutable; `observe` is lock-free from any thread.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  /// Cumulative count of observations <= upper_bounds()[i].
  std::uint64_t cumulative_bucket(std::size_t i) const;
  std::uint64_t count() const;
  double sum() const;
  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Non-cumulative per-bucket counts folded across shards; size is
  /// upper_bounds().size() + 1 with the overflow (+Inf) cell last.
  std::vector<std::uint64_t> folded_cells() const;
  /// Checkpoint restore: replaces the folded state (cells as returned by
  /// folded_cells(), plus the running sum) into the calling thread's
  /// shard, zeroing the rest.  Same contract as Counter::reset_to.
  void reset_to(std::span<const std::uint64_t> cells, double sum);

 private:
  struct alignas(64) Shard {
    /// One non-cumulative cell per bucket plus the overflow cell.
    std::vector<std::atomic<std::uint64_t>> cells;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;  ///< Strictly ascending, finite.
  std::array<Shard, kMetricShards> shards_;
};

/// One registered metric's folded state, captured by Registry::snapshot()
/// for the dgs.checkpoint.v1 artifact and replayed by Registry::restore().
struct MetricSnapshot {
  std::string name;
  std::string help;
  int kind = 0;  ///< 0 = counter, 1 = gauge, 2 = histogram.
  double value = 0.0;                    ///< Counter/gauge folded value.
  std::vector<double> upper_bounds;      ///< Histogram bucket bounds.
  std::vector<std::uint64_t> cells;      ///< Histogram folded_cells().
  double sum = 0.0;                      ///< Histogram running sum.
};

/// Owns every metric of one run/process and renders the Prometheus text
/// exposition.  Registration is mutex-guarded (cold); returned pointers are
/// stable for the registry's lifetime and lock-free to update.
/// Re-registering a name returns the existing instance (types must match).
class Registry {
 public:
  Counter* counter(const std::string& name, const std::string& help);
  Gauge* gauge(const std::string& name, const std::string& help);
  Histogram* histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds);

  /// Prometheus text exposition, families in ascending name order (a
  /// deterministic scrape for byte-comparison tests).
  void write_prometheus(std::ostream& out) const;

  /// Number of sample series the exposition would emit (one per counter or
  /// gauge; buckets + sum + count per histogram).
  std::size_t series_count() const;

  /// Every entry's folded state in ascending name order (checkpointing).
  std::vector<MetricSnapshot> snapshot() const;
  /// Re-applies a snapshot: entries are created when absent (matching the
  /// conditional registration of e.g. fault metrics) and reset to the
  /// captured values via the reset_to contract.  Existing entries must
  /// have the same kind.  Call from the driver thread only.
  void restore(std::span<const MetricSnapshot> metrics);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(const std::string& name, Kind kind,
                   const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< Sorted for stable exposition.
};

/// Reads one sample back out of a Prometheus text exposition: the value of
/// the line whose metric name equals `name` exactly (no label matching —
/// DGS series are unlabelled except histogram buckets, whose `name{le=...}`
/// form never equals a bare name).  Returns false when absent.  This is
/// the snapshot half of the round trip: write_prometheus produced the
/// text, and the campaign aggregator folds per-run snapshots back into
/// campaign-level counters (DESIGN.md §12).
bool read_prometheus_sample(std::string_view exposition,
                            std::string_view name, double* out);

}  // namespace dgs::obs
