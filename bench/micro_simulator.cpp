// Whole-pipeline micro-benchmarks: the per-step cost of each scheduler
// stage at paper scale (259 satellites x 173 stations), and a full
// simulated hour.  These are the numbers that say whether the backend
// scheduler could run in real time (it must plan faster than the
// constellation flies).
#include <benchmark/benchmark.h>

#include "src/core/dgs.h"
#include "src/core/lookahead.h"

namespace {

using namespace dgs;

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

struct PaperScale {
  PaperScale()
      : sats(groundseg::generate_constellation(groundseg::NetworkOptions{},
                                               kEpoch)),
        stations(groundseg::generate_dgs_stations(
            groundseg::NetworkOptions{})),
        wx(7, kEpoch, 25.0), engine(sats, stations, &wx),
        queues(sats.size()) {
    for (auto& q : queues) q.generate(20e9, kEpoch.plus_seconds(-3600));
  }
  std::vector<groundseg::SatelliteConfig> sats;
  std::vector<groundseg::GroundStation> stations;
  weather::SyntheticWeatherProvider wx;
  core::VisibilityEngine engine;
  std::vector<core::OnboardQueue> queues;
};

PaperScale& fixture() {
  static PaperScale ps;
  return ps;
}

void BM_ContactGraphOneInstant(benchmark::State& state) {
  PaperScale& ps = fixture();
  double minute = 0.0;
  for (auto _ : state) {
    minute += 1.0;
    benchmark::DoNotOptimize(
        ps.engine.contacts(kEpoch.plus_seconds(minute * 60.0)));
  }
}
BENCHMARK(BM_ContactGraphOneInstant);

void BM_ScheduleOneInstant(benchmark::State& state) {
  PaperScale& ps = fixture();
  core::Scheduler scheduler(&ps.engine, core::SchedulerConfig{});
  double minute = 0.0;
  for (auto _ : state) {
    minute += 1.0;
    benchmark::DoNotOptimize(scheduler.schedule_instant(
        kEpoch.plus_seconds(minute * 60.0), ps.queues));
  }
}
BENCHMARK(BM_ScheduleOneInstant);

void BM_PlanThreeHourHorizon(benchmark::State& state) {
  PaperScale& ps = fixture();
  core::LatencyValue phi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::plan_horizon(ps.engine, ps.queues, phi, kEpoch, 180, 60.0));
  }
}
BENCHMARK(BM_PlanThreeHourHorizon)->Unit(benchmark::kMillisecond);

void BM_SimulateOneHourPaperScale(benchmark::State& state) {
  PaperScale& ps = fixture();
  core::SimulationOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = 1.0;
  for (auto _ : state) {
    core::Simulator sim(ps.sats, ps.stations, &ps.wx, opts);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulateOneHourPaperScale)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
