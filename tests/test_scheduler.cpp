// Scheduler: weighting, matching constraints, value-function behaviour.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "src/core/scheduler.h"

namespace dgs::core {
namespace {

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
constexpr double kGb = 1e9;

groundseg::NetworkOptions small_opts() {
  groundseg::NetworkOptions opts;
  opts.num_stations = 20;
  opts.num_satellites = 10;
  opts.seed = 11;
  return opts;
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : sats_(groundseg::generate_constellation(small_opts(), kEpoch)),
        stations_(groundseg::generate_dgs_stations(small_opts())),
        engine_(sats_, stations_, nullptr) {}

  std::vector<OnboardQueue> loaded_queues(double gb_each) const {
    std::vector<OnboardQueue> queues(sats_.size());
    for (auto& q : queues) q.generate(gb_each * kGb, kEpoch);
    return queues;
  }

  /// First instant within `hours` at which at least `min_edges` edges exist.
  util::Epoch busy_instant(int min_edges, double hours) const {
    for (double m = 0.0; m < hours * 60.0; m += 1.0) {
      const util::Epoch t = kEpoch.plus_seconds(m * 60.0);
      if (static_cast<int>(engine_.contacts(t).size()) >= min_edges) return t;
    }
    return kEpoch;
  }

  std::vector<groundseg::SatelliteConfig> sats_;
  std::vector<groundseg::GroundStation> stations_;
  VisibilityEngine engine_;
};

TEST_F(SchedulerTest, RejectsBadConstruction) {
  EXPECT_THROW(Scheduler(nullptr, SchedulerConfig{}), std::invalid_argument);
  SchedulerConfig bad;
  bad.quantum_seconds = 0.0;
  EXPECT_THROW(Scheduler(&engine_, bad), std::invalid_argument);
}

TEST_F(SchedulerTest, RejectsWrongQueueCount) {
  Scheduler sched(&engine_, SchedulerConfig{});
  std::vector<OnboardQueue> wrong(3);
  EXPECT_THROW(sched.schedule_instant(kEpoch, wrong), std::invalid_argument);
}

TEST_F(SchedulerTest, AssignmentsAreAMatching) {
  Scheduler sched(&engine_, SchedulerConfig{});
  const auto queues = loaded_queues(10.0);
  for (double m = 0.0; m < 360.0; m += 15.0) {
    const auto assigned =
        sched.schedule_instant(kEpoch.plus_seconds(m * 60.0), queues);
    std::set<int> sats, stations;
    for (const ContactEdge& e : assigned) {
      EXPECT_TRUE(sats.insert(e.sat).second) << "satellite double-booked";
      EXPECT_TRUE(stations.insert(e.station).second)
          << "station double-booked";
      EXPECT_GT(e.weight, 0.0);
      EXPECT_GT(e.predicted_rate_bps, 0.0);
    }
  }
}

TEST_F(SchedulerTest, EmptyQueuesYieldNoAssignments) {
  Scheduler sched(&engine_, SchedulerConfig{});
  std::vector<OnboardQueue> empty(sats_.size());
  const util::Epoch t = busy_instant(1, 6.0);
  EXPECT_TRUE(sched.schedule_instant(t, empty).empty());
}

TEST_F(SchedulerTest, OnlySatellitesWithDataAreScheduled) {
  Scheduler sched(&engine_, SchedulerConfig{});
  std::vector<OnboardQueue> queues(sats_.size());
  queues[2].generate(5.0 * kGb, kEpoch);  // only satellite 2 has data
  for (double m = 0.0; m < 720.0; m += 5.0) {
    for (const ContactEdge& e :
         sched.schedule_instant(kEpoch.plus_seconds(m * 60.0), queues)) {
      EXPECT_EQ(e.sat, 2);
    }
  }
}

TEST_F(SchedulerTest, LatencyValuePrefersOlderData) {
  // Find an instant where two satellites compete for one station, give one
  // of them much older data, and check it wins under the latency value.
  SchedulerConfig cfg;
  cfg.value = ValueKind::kLatency;
  Scheduler sched(&engine_, cfg);

  for (double m = 0.0; m < 24.0 * 60.0; m += 2.0) {
    const util::Epoch t = kEpoch.plus_seconds(m * 60.0);
    const auto edges = engine_.contacts(t);
    // Look for a station with >= 2 candidate satellites.
    for (const auto& a : edges) {
      for (const auto& b : edges) {
        if (a.station != b.station || a.sat == b.sat) continue;
        std::vector<OnboardQueue> queues(sats_.size());
        queues[a.sat].generate(1.0 * kGb, t.plus_seconds(-7200));  // old
        queues[b.sat].generate(1.0 * kGb, t.plus_seconds(-60));    // fresh
        const auto assigned = sched.schedule_instant(t, queues);
        for (const ContactEdge& e : assigned) {
          if (e.station == a.station) {
            EXPECT_EQ(e.sat, a.sat) << "older data should win the station";
            return;  // one conclusive instance is enough
          }
        }
      }
    }
  }
  GTEST_SKIP() << "no contention instant found in the window";
}

TEST_F(SchedulerTest, ThroughputValueIgnoresAge) {
  SchedulerConfig cfg;
  cfg.value = ValueKind::kThroughput;
  Scheduler sched(&engine_, cfg);
  const util::Epoch t = busy_instant(1, 12.0);
  const auto edges = engine_.contacts(t);
  if (edges.empty()) GTEST_SKIP() << "no visibility in window";

  std::vector<OnboardQueue> young(sats_.size()), old(sats_.size());
  for (std::size_t s = 0; s < sats_.size(); ++s) {
    young[s].generate(5.0 * kGb, t.plus_seconds(-60));
    old[s].generate(5.0 * kGb, t.plus_seconds(-36000));
  }
  const auto a = sched.schedule_instant(t, young);
  const auto b = sched.schedule_instant(t, old);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sat, b[i].sat);
    EXPECT_EQ(a[i].station, b[i].station);
    EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
  }
}

TEST_F(SchedulerTest, MatcherKindIsHonored) {
  // All three matchers must produce a valid matching; the optimal one
  // yields at least the stable/greedy total weight.
  const auto queues = loaded_queues(50.0);
  const util::Epoch t = busy_instant(3, 24.0);

  double values[3] = {0, 0, 0};
  const MatcherKind kinds[] = {MatcherKind::kStable, MatcherKind::kOptimal,
                               MatcherKind::kGreedy};
  for (int k = 0; k < 3; ++k) {
    SchedulerConfig cfg;
    cfg.matcher = kinds[k];
    Scheduler sched(&engine_, cfg);
    for (const ContactEdge& e : sched.schedule_instant(t, queues)) {
      values[k] += e.weight;
    }
  }
  EXPECT_GE(values[1], values[0] - 1e-9);  // optimal >= stable
  EXPECT_GE(values[1], values[2] - 1e-9);  // optimal >= greedy
}

}  // namespace
}  // namespace dgs::core
