// DVB-S2 modulation & coding (ETSI EN 302 307).
//
// The paper's rate selection (§3.2) maps predicted SNR to a DVB-S2 MODCOD.
// We carry the standard's full normal-frame MODCOD table: modulation, LDPC
// code rate, spectral efficiency [bit/symbol], and the ideal required Es/N0
// [dB] for quasi-error-free operation (EN 302 307 table 13).
#pragma once

#include <span>
#include <string_view>

namespace dgs::link {

enum class Modulation { kQpsk, k8psk, k16apsk, k32apsk };

struct ModCod {
  std::string_view name;          ///< e.g. "16APSK 3/4".
  Modulation modulation;
  double code_rate;               ///< LDPC rate.
  double spectral_efficiency;     ///< Information bits per symbol.
  double required_esn0_db;        ///< Ideal AWGN Es/N0 for QEF.
};

/// All 28 normal-frame MODCODs, sorted by ascending required Es/N0.
std::span<const ModCod> dvbs2_modcods();

/// Highest-throughput MODCOD whose required Es/N0 (plus `margin_db`)
/// is at or below `esn0_db`.  Returns nullptr if even the most robust
/// MODCOD cannot close the link.
const ModCod* select_modcod(double esn0_db, double margin_db = 1.0);

/// Information bit rate [bit/s] achieved by `mc` at `symbol_rate_hz`.
double bitrate_bps(const ModCod& mc, double symbol_rate_hz);

}  // namespace dgs::link
