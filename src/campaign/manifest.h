// Campaign manifest: the on-disk identity of a campaign directory.
//
// The manifest pins everything that determines sample content — profile,
// campaign seed, sample count, and the scenario parameters — so a resumed
// invocation either matches it byte-for-byte or is rejected before it can
// mix artifacts from two different campaigns.  Worker count and artifact
// sinks are deliberately NOT identity: they change how fast samples are
// produced, never what is produced.
#pragma once

#include <string>

#include "src/campaign/campaign.h"

namespace dgs::campaign {

/// The identity members shared by the manifest and the aggregate
/// (run_artifact.h kCampaignIdentity order), rendered as JSON lines with
/// no trailing comma.
std::string render_campaign_identity(const CampaignOptions& opts);

/// The complete manifest document for these options.
std::string render_manifest(const CampaignOptions& opts);

/// Creates <out_dir>/manifest.json when absent; otherwise requires the
/// existing file to match render_manifest(opts) byte-for-byte.  Throws
/// std::runtime_error when the directory belongs to a different campaign.
void write_or_check_manifest(const CampaignOptions& opts);

}  // namespace dgs::campaign
