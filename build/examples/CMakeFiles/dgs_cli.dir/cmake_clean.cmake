file(REMOVE_RECURSE
  "CMakeFiles/dgs_cli.dir/dgs_cli.cpp.o"
  "CMakeFiles/dgs_cli.dir/dgs_cli.cpp.o.d"
  "dgs_cli"
  "dgs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
