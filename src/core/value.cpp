#include "src/core/value.h"

#include <algorithm>

#include "src/util/check.h"

namespace dgs::core {
namespace {
constexpr double kGb = 1e9;
}

double LatencyValue::edge_value(const OnboardQueue& queue,
                                const util::Epoch& now,
                                double link_bytes) const {
  double budget = std::min(link_bytes, queue.queued_bytes());
  double value = 0.0;
  for (const DataChunk& c : queue.chunks()) {
    if (budget <= 0.0) break;
    const double take = std::min(budget, c.remaining_bytes);
    const double age_minutes = now.minutes_since(c.capture);
    // Phi(x, t) = priority * t: SLA tiers scale the urgency of their age.
    // A small age floor keeps brand-new urgent data from valuing at zero.
    value += c.priority * (take / kGb) * std::max(0.1, age_minutes);
    budget -= take;
  }
  return value;
}

double ThroughputValue::edge_value(const OnboardQueue& queue,
                                   const util::Epoch& /*now*/,
                                   double link_bytes) const {
  return std::min(link_bytes, queue.queued_bytes()) / kGb;
}

BlendedValue::BlendedValue(double alpha) : alpha_(alpha) {
  DGS_ENSURE(alpha >= 0.0 && alpha <= 1.0,
             "alpha=" << alpha << " outside [0, 1]");
}

double BlendedValue::edge_value(const OnboardQueue& queue,
                                const util::Epoch& now,
                                double link_bytes) const {
  return alpha_ * latency_.edge_value(queue, now, link_bytes) +
         (1.0 - alpha_) * throughput_.edge_value(queue, now, link_bytes);
}

std::unique_ptr<ValueFunction> make_value_function(ValueKind kind) {
  switch (kind) {
    case ValueKind::kLatency:
      return std::make_unique<LatencyValue>();
    case ValueKind::kThroughput:
      return std::make_unique<ThroughputValue>();
  }
  DGS_CHECK(false, "unknown value kind " << static_cast<int>(kind));
}

}  // namespace dgs::core
