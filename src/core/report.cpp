#include "src/core/report.h"

#include <ostream>

namespace dgs::core {
namespace {

/// Percentile helper tolerating empty sample sets (JSON null).
void json_percentiles(std::ostream& out, const char* key,
                      const util::SampleSet& s) {
  if (s.empty()) {
    out << "  \"" << key << "\": null,\n";
    return;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"median\": %.3f, \"p90\": %.3f, \"p99\": %.3f, "
                "\"mean\": %.3f, \"count\": %zu},\n",
                key, s.percentile(50.0), s.percentile(90.0),
                s.percentile(99.0), s.mean(), s.size());
  out << buf;
}

}  // namespace

void write_timeseries_csv(std::ostream& out, const SimulationResult& result) {
  out << "hours,delivered_tb_cum,backlog_gb_total,active_links,"
         "failed_links_cum\n";
  char buf[128];
  for (const StepRecord& r : result.timeseries) {
    std::snprintf(buf, sizeof(buf), "%.4f,%.6f,%.3f,%d,%lld\n", r.hours,
                  r.delivered_bytes_cum / 1e12, r.backlog_bytes_total / 1e9,
                  r.active_links, static_cast<long long>(r.failed_cum));
    out << buf;
  }
}

void write_summary_json(std::ostream& out, const SimulationResult& result) {
  out << "{\n";
  json_percentiles(out, "latency_minutes", result.latency_minutes);
  json_percentiles(out, "urgent_latency_minutes",
                   result.urgent_latency_minutes);
  json_percentiles(out, "backlog_gb", result.backlog_gb);
  json_percentiles(out, "ack_delay_minutes", result.ack_delay_minutes);
  json_percentiles(out, "cloud_latency_minutes",
                   result.cloud_latency_minutes);
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "  \"total_generated_tb\": %.6f,\n"
      "  \"total_delivered_tb\": %.6f,\n"
      "  \"total_dropped_tb\": %.6f,\n"
      "  \"delivered_fraction\": %.6f,\n"
      "  \"assignments\": %lld,\n"
      "  \"failed_assignments\": %lld,\n"
      "  \"wasted_transmission_tb\": %.6f,\n"
      "  \"requeued_tb\": %.6f,\n"
      "  \"slew_events\": %lld,\n"
      "  \"outage_lost_tb\": %.6f,\n"
      "  \"ack_retries\": %lld,\n"
      "  \"replans\": %lld,\n"
      "  \"plan_upload_failures\": %lld,\n"
      "  \"mean_station_utilization\": %.6f,\n"
      "  \"steps\": %lld\n",
      result.total_generated_bytes / 1e12,
      result.total_delivered_bytes / 1e12,
      result.total_dropped_bytes / 1e12, result.delivered_fraction(),
      static_cast<long long>(result.assignments),
      static_cast<long long>(result.failed_assignments),
      result.wasted_transmission_bytes / 1e12, result.requeued_bytes / 1e12,
      static_cast<long long>(result.slew_events),
      result.outage_lost_bytes / 1e12,
      static_cast<long long>(result.ack_retries),
      static_cast<long long>(result.replans),
      static_cast<long long>(result.plan_upload_failures),
      result.mean_station_utilization,
      static_cast<long long>(result.steps));
  out << buf << "}\n";
}

}  // namespace dgs::core
