// Network-design ablation (EXPERIMENTS.md E26): optimized station
// subsets vs seeded random subsets vs the paper's latitude-spread
// DGS(25%) subsample, judged on the Fig. 3a/3b metrics (end-of-horizon
// backlog, delivery-latency tail).
//
// Timings come from google-benchmark (no raw clocks, dgslint R1).  With
// `--report-out=FILE` the binary additionally runs the comparison and
// writes a deterministic artifact — subset metrics only, no timings —
// that the CI netdesign lane byte-compares across `--threads 1` and
// `--threads 4`.  The report also enforces the E26 acceptance criterion:
// at equal K the greedy selection must strictly beat the mean of the
// seeded random subsets on p90 latency AND end-of-run backlog (nonzero
// exit otherwise).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "src/netdesign/pareto.h"
#include "src/util/rng.h"
#include "src/weather/synthetic.h"

namespace {

using dgs::netdesign::CandidateSite;
using dgs::netdesign::EvalPoint;
using dgs::netdesign::GreedyOptions;
using dgs::netdesign::GreedyResult;
using dgs::netdesign::SubsetEvaluator;
using dgs::netdesign::ValueTable;

int g_threads = 1;
int g_pool = 60;
int g_sats = 40;
double g_hours = 6.0;
int g_k = 15;         ///< Station count under comparison (~25% of pool).
int g_randoms = 5;    ///< Seeded random subsets to average.

const dgs::util::Epoch kEpoch(dgs::util::DateTime{2020, 11, 4, 0, 0, 0.0});
constexpr std::uint64_t kWeatherSeed = 42;
constexpr double kStepSeconds = 60.0;

struct World {
  std::vector<dgs::groundseg::SatelliteConfig> sats;
  std::vector<CandidateSite> pool;
  std::unique_ptr<dgs::weather::SyntheticWeatherProvider> wx;
  ValueTable table;
  std::unique_ptr<SubsetEvaluator> evaluator;
};

World& world() {
  static std::unique_ptr<World> cache;
  if (cache) return *cache;
  cache = std::make_unique<World>();
  World& w = *cache;

  dgs::groundseg::NetworkOptions net;
  net.pool_size = g_pool;
  net.pool_seed = 42;
  net.num_satellites = g_sats;
  w.sats = dgs::groundseg::generate_constellation(net, kEpoch);
  w.pool = dgs::netdesign::make_candidate_pool(net);
  w.wx = std::make_unique<dgs::weather::SyntheticWeatherProvider>(
      kWeatherSeed, kEpoch, g_hours + 1.0);

  dgs::netdesign::ValueTableOptions table_opts;
  table_opts.start = kEpoch;
  table_opts.duration_hours = g_hours;
  table_opts.step_seconds = kStepSeconds;
  table_opts.parallel.num_threads = g_threads;
  w.table =
      dgs::netdesign::build_value_table(w.sats, w.pool, w.wx.get(),
                                        table_opts);

  dgs::core::SimulationOptions sim_opts;
  sim_opts.start = kEpoch;
  sim_opts.duration_hours = g_hours;
  sim_opts.step_seconds = kStepSeconds;
  sim_opts.parallel.num_threads = g_threads;
  w.evaluator = std::make_unique<SubsetEvaluator>(w.sats, w.pool,
                                                  w.wx.get(), sim_opts);
  return w;
}

void BM_NetDesignValueTable(benchmark::State& state) {
  World& w = world();
  dgs::netdesign::ValueTableOptions opts;
  opts.start = kEpoch;
  opts.duration_hours = g_hours;
  opts.step_seconds = kStepSeconds;
  opts.parallel.num_threads = g_threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dgs::netdesign::build_value_table(w.sats, w.pool, w.wx.get(), opts));
  }
}

void BM_NetDesignGreedy(benchmark::State& state) {
  World& w = world();
  GreedyOptions opts;
  opts.k = g_k;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgs::netdesign::lazy_greedy(w.table, opts));
  }
}

// --- E26 comparison report --------------------------------------------------

/// K pool indices drawn without replacement (partial Fisher-Yates).
std::vector<int> random_subset(int pool_size, int k, std::uint64_t seed) {
  dgs::util::Rng rng(seed);
  std::vector<int> indices(static_cast<std::size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    indices[static_cast<std::size_t>(i)] = i;
  }
  for (int i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(i, pool_size - 1));
    std::swap(indices[static_cast<std::size_t>(i)], indices[j]);
  }
  indices.resize(static_cast<std::size_t>(k));
  std::sort(indices.begin(), indices.end());
  return indices;
}

/// The paper's DGS(25%)-style subsample (every k-th station of a
/// latitude-sorted order), mapped back to pool indices.
std::vector<int> paper_style_subset(const std::vector<CandidateSite>& pool,
                                    int k) {
  const auto stations = dgs::netdesign::pool_stations(pool);
  const auto picked = dgs::groundseg::subsample_stations(
      stations, static_cast<double>(k) / static_cast<double>(pool.size()));
  std::vector<int> indices;
  indices.reserve(picked.size());
  for (const auto& gs : picked) indices.push_back(gs.id);
  std::sort(indices.begin(), indices.end());
  return indices;
}

int write_report(const std::string& path) {
  World& w = world();

  GreedyOptions greedy_opts;
  greedy_opts.k = g_k;
  const GreedyResult greedy = dgs::netdesign::lazy_greedy(w.table,
                                                          greedy_opts);
  std::vector<int> optimized = greedy.selected;
  std::sort(optimized.begin(), optimized.end());

  dgs::netdesign::LocalSearchOptions local;
  local.max_rounds = 1;
  local.top_m = 4;
  local.max_evals = 12;
  const auto refined = dgs::netdesign::local_search(
      w.table, optimized,
      [&](const std::vector<int>& s) { return w.evaluator->evaluate(s); },
      local);

  const EvalPoint opt_eval = w.evaluator->evaluate(optimized);
  const EvalPoint paper_eval =
      w.evaluator->evaluate(paper_style_subset(w.pool, g_k));
  std::vector<EvalPoint> random_evals;
  double rand_p90 = 0.0, rand_backlog = 0.0;
  for (int r = 0; r < g_randoms; ++r) {
    const EvalPoint e = w.evaluator->evaluate(random_subset(
        static_cast<int>(w.pool.size()), g_k,
        1000ull + static_cast<std::uint64_t>(r)));
    rand_p90 += e.latency_p90_min;
    rand_backlog += e.backlog_end_gb;
    random_evals.push_back(e);
  }
  rand_p90 /= g_randoms;
  rand_backlog /= g_randoms;

  const bool pass = opt_eval.latency_p90_min < rand_p90 &&
                    opt_eval.backlog_end_gb < rand_backlog;

  std::printf("E26: K=%d of %d-site pool, %d sats, %.1f h\n", g_k, g_pool,
              g_sats, g_hours);
  const auto row = [](const char* label, const EvalPoint& e) {
    std::printf("  %-22s p50 %7.1f min  p90 %7.1f min  backlog %8.2f GB  "
                "delivered %5.1f%%\n",
                label, e.latency_p50_min, e.latency_p90_min,
                e.backlog_end_gb, 100.0 * e.delivered_fraction);
  };
  row("greedy", opt_eval);
  row("greedy+local-search", refined.eval);
  row("paper-style DGS(25%)", paper_eval);
  for (std::size_t r = 0; r < random_evals.size(); ++r) {
    char label[32];
    std::snprintf(label, sizeof(label), "random #%zu", r + 1);
    row(label, random_evals[r]);
  }
  std::printf("  random mean: p90 %.1f min, backlog %.2f GB\n", rand_p90,
              rand_backlog);
  std::printf("E26 acceptance (greedy < random mean on p90 AND backlog): "
              "%s\n",
              pass ? "PASS" : "FAIL");

  if (!path.empty()) {
    std::FILE* fh = std::fopen(path.c_str(), "w");
    if (fh == nullptr) {
      std::fprintf(stderr, "abl_netdesign: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(fh, "{\n  \"schema\": \"dgs.netdesign_e26.v1\",\n");
    std::fprintf(fh, "  \"k\": %d, \"pool\": %d, \"sats\": %d, "
                 "\"hours\": %.3f,\n", g_k, g_pool, g_sats, g_hours);
    const auto emit = [fh](const char* key, const EvalPoint& e,
                           const char* tail) {
      std::fprintf(fh,
                   "  \"%s\": {\"latency_p50_min\": %.6f, "
                   "\"latency_p90_min\": %.6f, \"backlog_end_gb\": %.6f, "
                   "\"delivered_fraction\": %.6f}%s\n",
                   key, e.latency_p50_min, e.latency_p90_min,
                   e.backlog_end_gb, e.delivered_fraction, tail);
    };
    emit("greedy", opt_eval, ",");
    emit("greedy_local_search", refined.eval, ",");
    emit("paper_style", paper_eval, ",");
    std::fprintf(fh, "  \"randoms\": [\n");
    for (std::size_t r = 0; r < random_evals.size(); ++r) {
      const EvalPoint& e = random_evals[r];
      std::fprintf(fh,
                   "    {\"latency_p90_min\": %.6f, "
                   "\"backlog_end_gb\": %.6f}%s\n",
                   e.latency_p90_min, e.backlog_end_gb,
                   r + 1 < random_evals.size() ? "," : "");
    }
    std::fprintf(fh, "  ],\n  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(fh);
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  g_threads = dgs::bench::consume_threads_flag(&argc, argv);
  g_pool = dgs::bench::consume_int_flag(&argc, argv, "--pool", g_pool);
  g_sats = dgs::bench::consume_int_flag(&argc, argv, "--sats", g_sats);
  const int hours = dgs::bench::consume_int_flag(&argc, argv, "--hours", 0);
  if (hours > 0) g_hours = hours;
  g_k = dgs::bench::consume_int_flag(&argc, argv, "--k", g_k);
  g_randoms =
      dgs::bench::consume_int_flag(&argc, argv, "--randoms", g_randoms);
  const std::string report_path =
      dgs::bench::consume_string_flag(&argc, argv, "--report-out");
  const bool report_only =
      dgs::bench::consume_int_flag(&argc, argv, "--report", 0) != 0;
  if (g_pool < 2 || g_sats < 1 || g_k < 1 || g_k > g_pool ||
      g_randoms < 1) {
    std::fprintf(stderr, "abl_netdesign: invalid --pool/--sats/--k\n");
    return 2;
  }

  benchmark::RegisterBenchmark("BM_NetDesignValueTable",
                               BM_NetDesignValueTable)
      ->Arg(g_pool)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("BM_NetDesignGreedy", BM_NetDesignGreedy)
      ->Arg(g_pool)->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!report_only) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (report_only || !report_path.empty()) return write_report(report_path);
  return 0;
}
