#include "src/link/ttc.h"

#include <cmath>

#include "src/link/antenna.h"
#include "src/link/fspl.h"
#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::link {
namespace {

/// Required Eb/N0 for the rate-1/2 coded BPSK command link [dB].
constexpr double kRequiredEbN0Db = 4.5;

/// The discrete command-rate ladder [bps].
constexpr double kRates[] = {4e3, 16e3, 64e3, 256e3, 1024e3};

}  // namespace

double ttc_uplink_cn0_dbhz(const TtcUplinkSpec& gs,
                           const SatCommandReceiver& sat, double range_km) {
  DGS_ENSURE_GT(range_km, 0.0);
  DGS_ENSURE_GT(gs.tx_power_w, 0.0);
  const double eirp_dbw = 10.0 * std::log10(gs.tx_power_w) +
                          dish_gain_dbi(gs.dish_diameter_m, gs.frequency_hz,
                                        gs.aperture_efficiency) -
                          gs.line_loss_db;
  const double path_db = fspl_db(range_km, gs.frequency_hz);
  const double g_over_t =
      sat.antenna_gain_dbi - 10.0 * std::log10(sat.system_noise_temp_k);
  return eirp_dbw - path_db + g_over_t - util::kBoltzmannDb -
         sat.implementation_loss_db;
}

double ttc_select_rate_bps(double cn0_dbhz, double margin_db) {
  DGS_ENSURE_GE(margin_db, 0.0);
  double best = 0.0;
  for (double rate : kRates) {
    const double ebn0 = cn0_dbhz - 10.0 * std::log10(rate);
    if (ebn0 >= kRequiredEbN0Db + margin_db) best = rate;
  }
  return best;
}

double ttc_uplink_rate_bps(const TtcUplinkSpec& gs,
                           const SatCommandReceiver& sat, double range_km,
                           double margin_db) {
  return ttc_select_rate_bps(ttc_uplink_cn0_dbhz(gs, sat, range_km),
                             margin_db);
}

}  // namespace dgs::link
