#include "src/core/simulator.h"

#include "src/backend/station_edge.h"
#include "src/core/lookahead.h"
#include "src/obs/trace.h"
#include "src/util/angles.h"
#include "src/util/check.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace dgs::core {

namespace {

/// Builds the structured error for one violated constraint.
std::optional<OptionsError> err(std::string field, std::string message) {
  return OptionsError{std::move(field), std::move(message)};
}

std::string num(double v) {
  std::ostringstream s;
  s << v;
  return s.str();
}

/// Shared checks for a scheduled outage window (native plan entries and
/// the deprecated StationOutage shim alike).
std::optional<OptionsError> check_window(const std::string& field,
                                         int station_index,
                                         double start_hours,
                                         double end_hours,
                                         int num_stations) {
  if (num_stations >= 0 &&
      (station_index < 0 || station_index >= num_stations)) {
    return err(field + ".station_index",
               "station index " + num(station_index) +
                   " out of range [0, " + num(num_stations) + ")");
  }
  if (end_hours < start_hours) {
    return err(field + ".end_hours",
               "window ends (" + num(end_hours) +
                   " h) before it starts (" + num(start_hours) + " h)");
  }
  return std::nullopt;
}

}  // namespace

std::optional<OptionsError> SimulationOptions::validate(
    int num_stations, std::span<const int> station_ids) const {
  if (!(duration_hours > 0.0)) {
    return err("duration_hours",
               "must be > 0 (got " + num(duration_hours) + ")");
  }
  if (!(step_seconds > 0.0)) {
    return err("step_seconds",
               "must be > 0 (got " + num(step_seconds) + ")");
  }
  if (lookahead_hours < 0.0) {
    return err("lookahead_hours",
               "must be >= 0 (got " + num(lookahead_hours) + ")");
  }
  if (urgent_fraction < 0.0 || urgent_fraction > 1.0) {
    return err("urgent_fraction",
               "must be in [0, 1] (got " + num(urgent_fraction) + ")");
  }
  if (urgent_fraction > 0.0 && !(urgent_priority > 0.0)) {
    return err("urgent_priority",
               "must be > 0 (got " + num(urgent_priority) + ")");
  }
  if (initial_backlog_bytes < 0.0) {
    return err("initial_backlog_bytes",
               "must be >= 0 (got " + num(initial_backlog_bytes) + ")");
  }
  if (station_backhaul_bps < 0.0) {
    return err("station_backhaul_bps",
               "must be >= 0 (got " + num(station_backhaul_bps) + ")");
  }
  if (slew_seconds < 0.0) {
    return err("slew_seconds",
               "must be >= 0 (got " + num(slew_seconds) + ")");
  }
  if (parallel.num_threads < 0) {
    return err("parallel.num_threads",
               "must be >= 0 (got " + num(parallel.num_threads) + ")");
  }
  if (parallel.chunk_size <= 0) {
    return err("parallel.chunk_size",
               "must be > 0 (got " + num(parallel.chunk_size) + ")");
  }

  for (std::size_t i = 0; i < station_subset.size(); ++i) {
    const int id = station_subset[i];
    const std::string field =
        "station_subset[" + num(static_cast<double>(i)) + "]";
    if (id < 0) {
      return err(field, "station id must be >= 0 (got " + num(id) + ")");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (station_subset[j] == id) {
        return err(field, "duplicate station id " + num(id));
      }
    }
    if (!station_ids.empty() &&
        std::find(station_ids.begin(), station_ids.end(), id) ==
            station_ids.end()) {
      return err(field,
                 "unknown station id " + num(id) +
                     " (not in the loaded station set)");
    }
  }

  for (std::size_t i = 0; i < outages.size(); ++i) {
    const StationOutage& o = outages[i];
    if (auto e = check_window("outages[" + num(static_cast<double>(i)) +
                                  "]",
                              o.station_index, o.start_hours, o.end_hours,
                              num_stations)) {
      return e;
    }
  }
  for (std::size_t i = 0; i < faults.outages.size(); ++i) {
    const faults::OutageWindow& o = faults.outages[i];
    if (auto e = check_window(
            "faults.outages[" + num(static_cast<double>(i)) + "]",
            o.station_index, o.start_hours, o.end_hours, num_stations)) {
      return e;
    }
  }

  const faults::StationChurn& churn = faults.churn;
  if (churn.mtbf_hours < 0.0) {
    return err("faults.churn.mtbf_hours",
               "must be >= 0 (got " + num(churn.mtbf_hours) + ")");
  }
  if (churn.mtbf_hours > 0.0 && !(churn.mttr_hours > 0.0)) {
    return err("faults.churn.mttr_hours",
               "must be > 0 when churn is enabled (got " +
                   num(churn.mttr_hours) + ")");
  }
  if (churn.station_fraction < 0.0 || churn.station_fraction > 1.0) {
    return err("faults.churn.station_fraction",
               "must be in [0, 1] (got " + num(churn.station_fraction) +
                   ")");
  }

  if (!faults.backhaul.empty() && !(station_backhaul_bps > 0.0)) {
    return err("faults.backhaul",
               "backhaul degradation requires station_backhaul_bps > 0 "
               "(no edge queues are modelled otherwise)");
  }
  for (std::size_t i = 0; i < faults.backhaul.size(); ++i) {
    const faults::BackhaulFault& f = faults.backhaul[i];
    const std::string field =
        "faults.backhaul[" + num(static_cast<double>(i)) + "]";
    if (auto e = check_window(field, f.station_index, f.start_hours,
                              f.end_hours, num_stations)) {
      return e;
    }
    if (f.rate_multiplier < 0.0 || f.rate_multiplier > 1.0) {
      return err(field + ".rate_multiplier",
                 "must be in [0, 1] (got " + num(f.rate_multiplier) + ")");
    }
  }

  const faults::AckRelayFaults& ack = faults.ack_relay;
  if (ack.loss_probability < 0.0 || ack.loss_probability >= 1.0) {
    return err("faults.ack_relay.loss_probability",
               "must be in [0, 1) (got " + num(ack.loss_probability) +
                   ")");
  }
  if (ack.loss_probability > 0.0) {
    if (!(ack.initial_backoff_s > 0.0)) {
      return err("faults.ack_relay.initial_backoff_s",
                 "must be > 0 (got " + num(ack.initial_backoff_s) + ")");
    }
    if (ack.backoff_multiplier < 1.0) {
      return err("faults.ack_relay.backoff_multiplier",
                 "must be >= 1 (got " + num(ack.backoff_multiplier) + ")");
    }
    if (ack.max_backoff_s < ack.initial_backoff_s) {
      return err("faults.ack_relay.max_backoff_s",
                 "must be >= initial_backoff_s (got " +
                     num(ack.max_backoff_s) + ")");
    }
    if (ack.max_attempts < 1) {
      return err("faults.ack_relay.max_attempts",
                 "must be >= 1 (got " + num(ack.max_attempts) + ")");
    }
  }

  const double pu = faults.plan_upload.failure_probability;
  if (pu < 0.0 || pu >= 1.0) {
    return err("faults.plan_upload.failure_probability",
               "must be in [0, 1) (got " + num(pu) + ")");
  }
  return std::nullopt;
}

faults::FaultPlan SimulationOptions::resolved_faults() const {
  faults::FaultPlan plan = faults;
  for (const StationOutage& o : outages) {
    plan.outages.push_back(faults::OutageWindow{
        o.station_index, o.start_hours, o.end_hours});
  }
  return plan;
}

Simulator::Simulator(std::vector<groundseg::SatelliteConfig> sats,
                     std::vector<groundseg::GroundStation> stations,
                     const weather::WeatherProvider* actual_weather,
                     const SimulationOptions& opts)
    : sats_(std::move(sats)), stations_(std::move(stations)),
      actual_wx_(actual_weather), opts_(opts) {
  DGS_ENSURE(!sats_.empty() && !stations_.empty(),
             "sats=" << sats_.size() << " stations=" << stations_.size());
  // Apply the station-subset restriction before anything else: membership
  // is checked against the *input* station ids, while everything
  // downstream (fault-plan indices, the visibility engine, metrics) sees
  // only the filtered list, in input order.
  std::vector<int> station_ids;
  station_ids.reserve(stations_.size());
  for (const groundseg::GroundStation& gs : stations_) {
    station_ids.push_back(gs.id);
  }
  if (!opts_.station_subset.empty()) {
    std::vector<groundseg::GroundStation> kept;
    kept.reserve(opts_.station_subset.size());
    for (groundseg::GroundStation& gs : stations_) {
      if (std::find(opts_.station_subset.begin(),
                    opts_.station_subset.end(),
                    gs.id) != opts_.station_subset.end()) {
        kept.push_back(std::move(gs));
      }
    }
    stations_ = std::move(kept);
  }
  if (const auto e = opts_.validate(static_cast<int>(stations_.size()),
                                    station_ids)) {
    // dgslint: allow(R4) -- renders OptionsError; format is test-pinned
    throw std::invalid_argument("SimulationOptions." + e->field + ": " +
                                e->message);
  }
}

double Simulator::realized_rate_bps(const ContactEdge& e,
                                    const util::Epoch& when) const {
  const groundseg::GroundStation& gs = stations_[e.station];
  weather::WeatherSample wx;
  if (actual_wx_ != nullptr) {
    wx = actual_wx_->actual(gs.location.latitude_rad,
                            gs.location.longitude_rad, when);
  }
  link::PathConditions path;
  path.range_km = e.range_km;
  path.elevation_rad = e.elevation_rad;
  path.site_latitude_rad = gs.location.latitude_rad;
  path.site_altitude_km = gs.location.altitude_km;
  path.rain_rate_mm_h = wx.rain_rate_mm_h;
  path.cloud_liquid_kg_m2 = wx.cloud_liquid_kg_m2;

  // The satellite transmits at the *scheduled* MODCOD (receive-only
  // stations cannot request a change mid-pass).  The transfer succeeds iff
  // the actual Es/N0 still meets that MODCOD's requirement.  Beamforming
  // stations pay the same power-split penalty the scheduler assumed.
  link::ReceiveSystem rx = gs.receiver;
  if (gs.beam_count > 1) rx.aperture_efficiency /= gs.beam_count;
  const link::LinkBudget actual =
      link::evaluate_link(sats_[e.sat].radio, rx, path);
  if (e.modcod == nullptr) return 0.0;
  if (actual.esn0_db < e.modcod->required_esn0_db) return 0.0;
  return link::bitrate_bps(*e.modcod, sats_[e.sat].radio.symbol_rate_hz) *
         sats_[e.sat].radio.channels;
}

SimulationResult Simulator::run() {
  const int num_sats = static_cast<int>(sats_.size());
  const int num_stations = static_cast<int>(stations_.size());
  const double dt = opts_.step_seconds;
  const std::int64_t steps = static_cast<std::int64_t>(
      std::llround(opts_.duration_hours * 3600.0 / dt));

  // Scheduling sees forecasts; outcomes use the actual field.
  const weather::WeatherProvider* forecast_wx =
      opts_.weather_aware ? actual_wx_ : nullptr;
  VisibilityEngine engine(sats_, stations_, forecast_wx);

  // Parallel hot loops + step-geometry memoization.  Both preserve
  // bit-identical results; the cache is sized to hold a whole look-ahead
  // window so a planning sweep propagates each epoch exactly once.
  util::ThreadPool pool(opts_.parallel);
  engine.set_thread_pool(&pool);
  // Must precede Scheduler construction and enable_geometry_cache: both
  // register their counters against the engine's registry at setup time.
  engine.set_metrics(opts_.metrics);
  SchedulerConfig sched_cfg;
  sched_cfg.matcher = opts_.matcher;
  sched_cfg.value = opts_.value;
  sched_cfg.quantum_seconds = dt;
  sched_cfg.edge_value_modifier = opts_.edge_value_modifier;
  Scheduler scheduler(&engine, sched_cfg);

  SimulationResult res;
  res.per_satellite.resize(num_sats);

  // Fault injection (DESIGN.md §11): the plan (with the deprecated
  // `outages` shim merged in) is expanded onto the step grid once, on the
  // driver thread; all later queries are pure lookups or stateless hash
  // draws, so fault behaviour is bit-identical at any thread count.
  const faults::FaultPlan fault_plan = opts_.resolved_faults();
  std::optional<faults::FaultTimeline> timeline;
  if (!fault_plan.empty()) {
    timeline.emplace(fault_plan, num_stations, steps, dt);
  }
  const bool station_faults =
      timeline.has_value() && timeline->has_station_faults();
  const bool backhaul_faults =
      timeline.has_value() && timeline->has_backhaul_faults();

  // Sim-level metrics.  All updates below happen on the driver thread:
  // byte quantities are non-integer doubles, which the shard-fold
  // determinism contract (DESIGN.md §10) keeps out of parallel regions.
  // Each counter mirrors the matching SimulationResult field add-for-add,
  // so the two stay bit-identical.
  obs::Registry* const metrics = opts_.metrics;
  struct {
    obs::Counter* generated_bytes = nullptr;
    obs::Counter* delivered_bytes = nullptr;
    obs::Counter* dropped_bytes = nullptr;
    obs::Counter* wasted_bytes = nullptr;
    obs::Counter* requeued_bytes = nullptr;
    obs::Counter* assignments = nullptr;
    obs::Counter* failed_assignments = nullptr;
    obs::Counter* slew_events = nullptr;
    obs::Counter* steps = nullptr;
    obs::Counter* ack_batches = nullptr;
    obs::Counter* plan_uploads = nullptr;
    obs::Counter* backhaul_received = nullptr;
    obs::Counter* backhaul_uploaded = nullptr;
    obs::Gauge* backlog_bytes = nullptr;
    obs::Gauge* pending_ack_bytes = nullptr;
    obs::Gauge* station_queued_bytes = nullptr;
    obs::Histogram* latency_minutes = nullptr;
  } om;
  if (metrics != nullptr) {
    om.generated_bytes = metrics->counter(
        "dgs_sim_generated_bytes_total", "Bytes captured at the sensors");
    om.delivered_bytes = metrics->counter(
        "dgs_sim_delivered_bytes_total", "Bytes captured by the ground");
    om.dropped_bytes = metrics->counter(
        "dgs_sim_dropped_bytes_total", "Bytes lost to full recorders");
    om.wasted_bytes = metrics->counter(
        "dgs_sim_wasted_bytes_total",
        "Bytes transmitted into failed (mis-predicted MODCOD) slots");
    om.requeued_bytes = metrics->counter(
        "dgs_sim_requeued_bytes_total",
        "Bytes re-queued for retransmission after a collated report");
    om.assignments = metrics->counter(
        "dgs_sim_assignments_total", "Scheduled (sat, station) slots");
    om.failed_assignments = metrics->counter(
        "dgs_sim_failed_assignments_total",
        "Slots whose scheduled MODCOD did not close");
    om.slew_events = metrics->counter(
        "dgs_sim_slew_events_total",
        "Station retargets to a new satellite (slew model on)");
    om.steps = metrics->counter("dgs_sim_steps_total",
                                "Simulation steps executed");
    om.ack_batches = metrics->counter(
        "dgs_sim_ack_batches_total",
        "Delivery batches acknowledged via collated reports");
    om.plan_uploads = metrics->counter(
        "dgs_sim_plan_uploads_total",
        "Fresh plans uploaded at transmit-capable contacts");
    om.backhaul_received = metrics->counter(
        "dgs_backhaul_received_bytes_total",
        "Bytes queued at station edges from the downlink");
    om.backhaul_uploaded = metrics->counter(
        "dgs_backhaul_uploaded_bytes_total",
        "Bytes uploaded from station edges to the cloud");
    om.backlog_bytes = metrics->gauge(
        "dgs_sim_backlog_bytes", "Bytes queued on board across satellites");
    om.pending_ack_bytes = metrics->gauge(
        "dgs_sim_pending_ack_bytes",
        "Bytes delivered but not yet acknowledged");
    om.station_queued_bytes = metrics->gauge(
        "dgs_backhaul_queued_bytes",
        "Bytes still queued at station edges (not yet in the cloud)");
    om.latency_minutes = metrics->histogram(
        "dgs_sim_latency_minutes", "Capture-to-ground latency per chunk",
        {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0});
  }

  // Fault metrics, registered only when a fault plan is active so
  // fault-free runs keep their exposition unchanged.  Counters mirror the
  // matching SimulationResult fields add-for-add.
  struct {
    obs::Counter* outage_transitions = nullptr;
    obs::Counter* outage_lost_bytes = nullptr;
    obs::Counter* ack_retries = nullptr;
    obs::Counter* replans = nullptr;
    obs::Counter* plan_upload_failures = nullptr;
    obs::Counter* backhaul_degraded_steps = nullptr;
    obs::Gauge* stations_down = nullptr;
  } fm;
  if (metrics != nullptr && timeline.has_value()) {
    fm.outage_transitions = metrics->counter(
        "dgs_faults_outage_transitions_total",
        "Station up->down and down->up transitions");
    fm.outage_lost_bytes = metrics->counter(
        "dgs_faults_outage_lost_bytes_total",
        "Bytes transmitted into a faulted station's dead contact");
    fm.ack_retries = metrics->counter(
        "dgs_faults_ack_retries_total",
        "Ack-relay report attempts lost to Internet faults and retried");
    fm.replans = metrics->counter(
        "dgs_faults_replans_total",
        "Look-ahead replans triggered by an assigned station faulting");
    fm.plan_upload_failures = metrics->counter(
        "dgs_faults_plan_upload_failures_total",
        "TX contacts whose TT&C exchange failed");
    fm.backhaul_degraded_steps = metrics->counter(
        "dgs_faults_backhaul_degraded_station_steps_total",
        "Station-steps spent with a degraded backhaul multiplier");
    fm.stations_down = metrics->gauge(
        "dgs_faults_stations_down", "Stations currently in outage");
  }

  // Event-log state: the shared step clock (also stamps the timeseries)
  // plus per-(sat, station) contact lifecycle tracking.
  obs::EventLog* const events = opts_.events;
  const obs::StepClock clock(opts_.start, dt);
  struct OpenContact {
    const link::ModCod* modcod = nullptr;
    int held_steps = 0;
    std::int64_t last_step = -1;
  };
  std::map<std::pair<int, int>, OpenContact> open_contacts;
  // Station down mask for the current step (empty while no station fault
  // channel is active, preserving the fault-free fast path).
  std::vector<char> down;
  std::vector<char> prev_down(num_stations, 0);
  if (station_faults) down.assign(static_cast<std::size_t>(num_stations), 0);
  // Previous step's backhaul multiplier per station, for transition events.
  std::vector<double> prev_backhaul_mult;
  if (backhaul_faults) {
    prev_backhaul_mult.assign(static_cast<std::size_t>(num_stations), 1.0);
  }
  std::uint64_t cache_hits_prev = 0;
  std::uint64_t cache_misses_prev = 0;

  std::vector<OnboardQueue> queues(num_sats);
  for (int s = 0; s < num_sats; ++s) {
    if (sats_[s].storage_capacity_bytes > 0.0) {
      queues[s].set_capacity(sats_[s].storage_capacity_bytes);
    }
  }
  std::vector<util::Epoch> last_plan(num_sats, opts_.start);
  std::vector<std::int64_t> station_busy(num_stations, 0);

  // Steady-state warm start: pre-existing backlog captured in the past.
  if (opts_.initial_backlog_bytes > 0.0) {
    const util::Epoch captured =
        opts_.start.plus_seconds(-opts_.initial_backlog_age_hours * 3600.0);
    for (int s = 0; s < num_sats; ++s) {
      queues[s].generate(opts_.initial_backlog_bytes, captured);
      res.per_satellite[s].generated_bytes += opts_.initial_backlog_bytes;
      res.total_generated_bytes += opts_.initial_backlog_bytes;
      if (om.generated_bytes != nullptr) {
        om.generated_bytes->inc(opts_.initial_backlog_bytes);
      }
    }
  }

  std::vector<double> leads(num_sats, 0.0);

  // Which satellite each station served in the previous step (-1 = idle);
  // only maintained when slew is modelled.
  std::vector<int> prev_served(num_stations, -1);

  // Station edge queues (opts_.station_backhaul_bps > 0).
  std::vector<backend::StationEdgeQueue> edge_queues;
  if (opts_.station_backhaul_bps > 0.0) {
    edge_queues.assign(num_stations,
                       backend::StationEdgeQueue(opts_.station_backhaul_bps));
    for (backend::StationEdgeQueue& eq : edge_queues) {
      eq.set_metrics(om.backhaul_received, om.backhaul_uploaded);
    }
  }

  // Look-ahead planning state (opts_.lookahead_hours > 0).
  const int plan_window_steps =
      opts_.lookahead_hours > 0.0
          ? std::max(1, static_cast<int>(
                            std::llround(opts_.lookahead_hours * 3600.0 / dt)))
          : 0;
  engine.enable_geometry_cache(
      opts_.start, dt, plan_window_steps > 0 ? plan_window_steps : 4);

  HorizonPlan plan;
  std::int64_t plan_origin = -1;

  for (std::int64_t step = 0; step < steps; ++step) {
    DGS_TRACE_SPAN("sim.step");
    // StepClock is the single timestamp source: step_start drives the
    // physics, end_hours stamps both the timeseries record and every event
    // this step emits, so the two artifacts join without drift.
    const util::Epoch now = clock.step_start(step);
    if (events != nullptr) events->begin_step(step, clock.end_hours(step));

    // 0. Fault state for this step: refresh the station down mask and
    // emit up/down transitions.  `new_outage` feeds the look-ahead
    // replan check below.
    bool new_outage = false;
    if (station_faults) {
      timeline->fill_station_down(step, &down);
      for (int g = 0; g < num_stations; ++g) {
        if (down[g] != 0 && prev_down[g] == 0) {
          new_outage = true;
          if (events != nullptr) events->outage_begin(g);
          if (fm.outage_transitions != nullptr) {
            fm.outage_transitions->inc();
          }
        } else if (down[g] == 0 && prev_down[g] != 0) {
          if (events != nullptr) events->outage_end(g);
          if (fm.outage_transitions != nullptr) {
            fm.outage_transitions->inc();
          }
        }
      }
      prev_down.assign(down.begin(), down.end());
    }
    const std::span<const char> down_span =
        station_faults ? std::span<const char>(down)
                       : std::span<const char>();

    // 1. Imaging: continuous data generation, one chunk per step (two when
    // an urgent tier is configured).
    {
      DGS_TRACE_SPAN("sim.generate");
      for (int s = 0; s < num_sats; ++s) {
        const double bytes =
            sats_[s].data_generation_bytes_per_day * dt / 86400.0;
        const double urgent = bytes * opts_.urgent_fraction;
        if (urgent > 0.0) {
          queues[s].generate(urgent, now, opts_.urgent_priority);
        }
        queues[s].generate(bytes - urgent, now);
        res.per_satellite[s].generated_bytes += bytes;
        res.total_generated_bytes += bytes;
        if (om.generated_bytes != nullptr) om.generated_bytes->inc(bytes);
      }
    }

    // 2. Plan staleness per satellite.
    if (opts_.couple_forecast_to_plan_upload) {
      for (int s = 0; s < num_sats; ++s) {
        leads[s] = now.seconds_since(last_plan[s]);
      }
    }  // else all-zero: always-fresh plans.

    // 3. Schedule this instant: either per-instant matching (with failure
    // injection applied) or the pre-computed look-ahead horizon plan.
    std::vector<ContactEdge> assigned;
    {
      DGS_TRACE_SPAN("sim.schedule");
      if (plan_window_steps > 0) {
        const bool refresh =
            plan_origin < 0 || step - plan_origin >= plan_window_steps;
        if (refresh) {
          const int window = static_cast<int>(
              std::min<std::int64_t>(plan_window_steps, steps - step));
          plan = plan_horizon(engine, queues, scheduler.value_function(),
                              now, window, dt, down_span);
          plan_origin = step;
        }
        assigned = plan.per_step[step - plan_origin];
        // Replan-on-failure: a station that just went down while the
        // remainder of this window still assigns it invalidates the plan.
        // This step executes the stale assignments (in-flight
        // transmissions into the dead station are lost below); the
        // horizon from the next step is re-scored with the down mask.
        if (!refresh && new_outage && step + 1 < steps) {
          int faulted_station = -1;
          const auto rel = static_cast<std::size_t>(step - plan_origin);
          for (std::size_t k = rel;
               k < plan.per_step.size() && faulted_station < 0; ++k) {
            for (const ContactEdge& e : plan.per_step[k]) {
              if (down[e.station] != 0) {
                faulted_station = e.station;
                break;
              }
            }
          }
          if (faulted_station >= 0) {
            const int window = static_cast<int>(std::min<std::int64_t>(
                plan_window_steps, steps - (step + 1)));
            plan = plan_horizon(engine, queues, scheduler.value_function(),
                                clock.step_start(step + 1), window, dt,
                                down_span);
            plan_origin = step + 1;
            res.replans += 1;
            if (fm.replans != nullptr) fm.replans->inc();
            if (events != nullptr) {
              events->replan(faulted_station, window);
            }
          }
        }
      } else {
        assigned = scheduler.schedule_instant(now, queues, leads,
                                              down_span);
      }
    }

    // 4. Execute the assignments against actual weather.  The satellite
    // always transmits at the scheduled MODCOD and rate (receive-only
    // stations cannot renegotiate); whether the ground captures it depends
    // on the actual Es/N0.
    double step_edge_received = 0.0;
    {
      DGS_TRACE_SPAN("sim.execute");
      for (const ContactEdge& e : assigned) {
        res.assignments += 1;
        res.total_matched_value += e.weight;
        station_busy[e.station] += 1;
        if (om.assignments != nullptr) om.assignments->inc();

        // Contact lifecycle: a pair entering the assigned set opens a
        // contact; a MODCOD change mid-pass is a reselection.
        if (events != nullptr) {
          const auto key = std::make_pair(e.sat, e.station);
          auto [it, inserted] = open_contacts.try_emplace(key);
          OpenContact& oc = it->second;
          const std::string_view name =
              e.modcod != nullptr ? e.modcod->name : "none";
          if (inserted) {
            events->contact_open(e.sat, e.station, name,
                                 e.predicted_rate_bps,
                                 util::rad2deg(e.elevation_rad));
          } else if (oc.modcod != e.modcod) {
            events->modcod_selected(e.sat, e.station, name,
                                    e.predicted_rate_bps);
          }
          oc.modcod = e.modcod;
          oc.held_steps += 1;
          oc.last_step = step;
        }

        // A faulted station captures nothing: the satellite transmits
        // into the dead contact (it cannot tell), and the bytes take the
        // same missing-pieces requeue path as a mis-predicted MODCOD.
        const bool station_up = !station_faults || down[e.station] == 0;
        const bool received = station_up && realized_rate_bps(e, now) > 0.0;
        // Retargeting the dish costs slew/re-lock time out of the quantum.
        double effective_dt = dt;
        if (opts_.slew_seconds > 0.0 && prev_served[e.station] != e.sat) {
          effective_dt = std::max(0.0, dt - opts_.slew_seconds);
          res.slew_events += 1;
          if (om.slew_events != nullptr) om.slew_events->inc();
        }
        const double link_bytes = e.predicted_rate_bps * effective_dt / 8.0;
        // Ack-relay Internet faults: the station's report upload is lost
        // with some probability and retried with capped exponential
        // backoff, delaying when the batch's verdict reaches the
        // operator (and hence the next TX contact).
        double report_delay_s = 0.0;
        if (received && fault_plan.has_ack_relay_faults()) {
          const faults::AckRelayOutcome relay =
              timeline->ack_relay_outcome(step, e.sat, e.station);
          if (relay.retries > 0) {
            report_delay_s = relay.delay_s;
            res.ack_retries += relay.retries;
            if (fm.ack_retries != nullptr) {
              fm.ack_retries->inc(relay.retries);
            }
            if (events != nullptr) {
              events->ack_relay_retry(e.sat, e.station, relay.retries,
                                      relay.delay_s);
            }
          }
        }
        const double sent = queues[e.sat].transmit(
            link_bytes, now,
            [&](double latency_s, const DataChunk& chunk) {
              res.latency_minutes.add(latency_s / 60.0);
              if (om.latency_minutes != nullptr) {
                om.latency_minutes->observe(latency_s / 60.0);
              }
              if (chunk.priority > 1.0) {
                res.urgent_latency_minutes.add(latency_s / 60.0);
              } else {
                res.bulk_latency_minutes.add(latency_s / 60.0);
              }
              if (!edge_queues.empty()) {
                edge_queues[e.station].receive(chunk.total_bytes,
                                               chunk.priority, chunk.capture,
                                               now);
                step_edge_received += chunk.total_bytes;
              }
            },
            received, report_delay_s);
        if (received) {
          res.assigned_capacity_bytes += link_bytes;
          res.per_satellite[e.sat].delivered_bytes += sent;
          res.total_delivered_bytes += sent;
          if (om.delivered_bytes != nullptr) om.delivered_bytes->inc(sent);
        } else {
          res.failed_assignments += 1;
          res.wasted_transmission_bytes += sent;
          if (om.failed_assignments != nullptr) {
            om.failed_assignments->inc();
          }
          if (om.wasted_bytes != nullptr) om.wasted_bytes->inc(sent);
          if (!station_up) {
            res.outage_lost_bytes += sent;
            if (fm.outage_lost_bytes != nullptr) {
              fm.outage_lost_bytes->inc(sent);
            }
            if (events != nullptr) {
              events->outage_loss(e.sat, e.station, sent);
            }
          }
        }
        if (events != nullptr) {
          events->bytes_moved(e.sat, e.station, sent, received);
        }

        // Transmit-capable contact: collated report (acks + missing pieces)
        // and a fresh plan upload.  The S-band TT&C uplink is independent
        // of the X-band downlink outcome, so this happens even if the data
        // transfer failed.
        if (stations_[e.station].tx_capable && station_up) {
          // TT&C plan-upload fault: the whole exchange (acks + fresh
          // plan) is lost; the satellite keeps its stale plan until the
          // next TX opportunity.
          if (fault_plan.has_plan_upload_faults() &&
              timeline->plan_upload_fails(step, e.sat, e.station)) {
            res.plan_upload_failures += 1;
            if (fm.plan_upload_failures != nullptr) {
              fm.plan_upload_failures->inc();
            }
            if (events != nullptr) {
              events->plan_upload_failed(e.sat, e.station);
            }
          } else {
            double acked_bytes = 0.0;
            int ack_batches = 0;
            const double requeued = queues[e.sat].acknowledge_all(
                now, [&](double delay_s, double bytes) {
                  res.ack_delay_minutes.add(delay_s / 60.0);
                  acked_bytes += bytes;
                  ack_batches += 1;
                });
            res.requeued_bytes += requeued;
            if (om.requeued_bytes != nullptr) {
              om.requeued_bytes->inc(requeued);
            }
            if (om.ack_batches != nullptr && ack_batches > 0) {
              om.ack_batches->inc(ack_batches);
            }
            if (om.plan_uploads != nullptr) om.plan_uploads->inc();
            if (events != nullptr) {
              events->ack_relayed(e.sat, e.station, acked_bytes, requeued,
                                  ack_batches);
              events->plan_uploaded(e.sat, e.station,
                                    now.seconds_since(last_plan[e.sat]));
            }
            last_plan[e.sat] = now;
            res.per_satellite[e.sat].tx_contacts += 1;
          }
        }
      }
    }

    // Contacts absent from this step's assigned set have ended.
    if (events != nullptr) {
      for (auto it = open_contacts.begin(); it != open_contacts.end();) {
        if (it->second.last_step != step) {
          events->contact_close(it->first.first, it->first.second,
                                it->second.held_steps);
          it = open_contacts.erase(it);
        } else {
          ++it;
        }
      }
    }

    // 4b. Track which satellite each station served (slew accounting).
    if (opts_.slew_seconds > 0.0) {
      std::fill(prev_served.begin(), prev_served.end(), -1);
      for (const ContactEdge& e : assigned) prev_served[e.station] = e.sat;
    }

    // 5. Station backhaul: edge queues upload toward the cloud.
    if (!edge_queues.empty()) {
      DGS_TRACE_SPAN("sim.backhaul");
      const util::Epoch upload_t = now.plus_seconds(dt);
      double step_uploaded = 0.0;
      std::int64_t degraded_stations = 0;
      for (int g = 0; g < num_stations; ++g) {
        double mult = 1.0;
        if (backhaul_faults) {
          mult = timeline->backhaul_multiplier(g, step);
          if (mult < 1.0) {
            degraded_stations += 1;
            if (events != nullptr && prev_backhaul_mult[g] >= 1.0) {
              events->backhaul_fault_begin(g, mult);
            }
          } else if (events != nullptr && prev_backhaul_mult[g] < 1.0) {
            events->backhaul_fault_end(g);
          }
          prev_backhaul_mult[static_cast<std::size_t>(g)] = mult;
        }
        step_uploaded += edge_queues[static_cast<std::size_t>(g)].drain(
            dt, upload_t,
            [&](double latency_s, const backend::EdgeItem&) {
              res.cloud_latency_minutes.add(latency_s / 60.0);
            },
            mult);
      }
      if (fm.backhaul_degraded_steps != nullptr && degraded_stations > 0) {
        fm.backhaul_degraded_steps->inc(
            static_cast<double>(degraded_stations));
      }
      if (events != nullptr) {
        double queued = 0.0;
        for (const backend::StationEdgeQueue& eq : edge_queues) {
          queued += eq.queued_bytes();
        }
        events->backhaul_step(step_edge_received, step_uploaded, queued);
      }
    }

    // 6. Storage accounting.
    for (int s = 0; s < num_sats; ++s) {
      res.per_satellite[s].storage_high_water_bytes =
          std::max(res.per_satellite[s].storage_high_water_bytes,
                   queues[s].storage_bytes());
    }

    // 6b. Conservation audit: every byte a sensor offered must be exactly
    // one of dropped / queued / awaiting ack / freed by an ack.  A silent
    // leak here would corrupt every downstream backlog and latency figure.
#ifdef DGS_ENABLE_DCHECKS
    for (int s = 0; s < num_sats; ++s) {
      const std::string audit = queues[s].audit_conservation();
      DGS_CHECK(audit.empty(), "step " << step << ", sat " << s << ": "
                                       << audit);
    }
#endif

    // 6c. Geometry-cache deltas accrued during this step.
    if (events != nullptr) {
      if (const GeometryCache* gc = engine.geometry_cache(); gc != nullptr) {
        const std::uint64_t h = gc->hits();
        const std::uint64_t m = gc->misses();
        if (h > cache_hits_prev) {
          events->cache_hit(static_cast<std::int64_t>(h - cache_hits_prev));
        }
        if (m > cache_misses_prev) {
          events->cache_miss(
              static_cast<std::int64_t>(m - cache_misses_prev));
        }
        cache_hits_prev = h;
        cache_misses_prev = m;
      }
    }

    // 6d. Step-end gauges.
    if (metrics != nullptr) {
      double backlog = 0.0;
      double pending = 0.0;
      for (int s = 0; s < num_sats; ++s) {
        backlog += queues[s].queued_bytes();
        pending += queues[s].pending_ack_bytes();
      }
      om.backlog_bytes->set(backlog);
      om.pending_ack_bytes->set(pending);
      double station_queued = 0.0;
      for (const backend::StationEdgeQueue& eq : edge_queues) {
        station_queued += eq.queued_bytes();
      }
      om.station_queued_bytes->set(station_queued);
      om.steps->inc();
      if (fm.stations_down != nullptr) {
        std::int64_t n_down = 0;
        for (const char d : down) n_down += (d != 0) ? 1 : 0;
        fm.stations_down->set(static_cast<double>(n_down));
      }
    }

    // 7. Timeseries capture (same StepClock as the event log).
    if (opts_.collect_timeseries) {
      StepRecord rec;
      rec.hours = clock.end_hours(step);
      rec.delivered_bytes_cum = res.total_delivered_bytes;
      for (int s = 0; s < num_sats; ++s) {
        rec.backlog_bytes_total += queues[s].queued_bytes();
      }
      rec.active_links = static_cast<int>(assigned.size());
      rec.failed_cum = res.failed_assignments;
      res.timeseries.push_back(rec);
    }
  }

  // Contacts still open at horizon end close at the final step's stamp.
  if (events != nullptr) {
    for (const auto& [key, oc] : open_contacts) {
      events->contact_close(key.first, key.second, oc.held_steps);
    }
  }

  // Final accounting.
  for (int s = 0; s < num_sats; ++s) {
    SatelliteOutcome& o = res.per_satellite[s];
    o.backlog_bytes = queues[s].queued_bytes();
    o.pending_ack_bytes = queues[s].pending_ack_bytes();
    o.dropped_bytes = queues[s].dropped_bytes();
    res.total_dropped_bytes += o.dropped_bytes;
    res.backlog_gb.add(o.backlog_bytes / 1e9);
    if (om.dropped_bytes != nullptr) om.dropped_bytes->inc(o.dropped_bytes);
  }
  for (const backend::StationEdgeQueue& eq : edge_queues) {
    res.station_queued_bytes += eq.queued_bytes();
  }
  // Whole-run conservation: the result's aggregate counters must agree with
  // the queues' lifetime books.  Generated splits into delivered + dropped +
  // still-queued + awaiting-ack, with failed transmissions (wasted) either
  // re-queued already or still in limbo awaiting their collated report.
#ifdef DGS_ENABLE_DCHECKS
  {
    double offered = 0.0, acked = 0.0, pending = 0.0, queued = 0.0,
           dropped = 0.0;
    for (int s = 0; s < num_sats; ++s) {
      offered += queues[s].offered_bytes();
      acked += queues[s].acked_bytes();
      pending += queues[s].pending_ack_bytes();
      queued += queues[s].queued_bytes();
      dropped += queues[s].dropped_bytes();
    }
    const double tol = 1e-6 * std::max(1.0, offered);
    DGS_CHECK(std::abs(res.total_generated_bytes - offered) <= tol,
              "generated=" << res.total_generated_bytes
                           << " != offered=" << offered);
    DGS_CHECK(std::abs(res.total_generated_bytes -
                       (dropped + queued + pending + acked)) <= tol,
              "generated=" << res.total_generated_bytes << " vs dropped="
                           << dropped << " + queued=" << queued
                           << " + pending_ack=" << pending << " + acked="
                           << acked);
    // Sent bytes not yet returned by a report are exactly the pending set.
    DGS_CHECK(std::abs((res.total_delivered_bytes +
                        res.wasted_transmission_bytes - res.requeued_bytes) -
                       (acked + pending)) <= tol,
              "delivered=" << res.total_delivered_bytes << " + wasted="
                           << res.wasted_transmission_bytes << " - requeued="
                           << res.requeued_bytes << " vs acked=" << acked
                           << " + pending_ack=" << pending);
  }
#endif

  std::int64_t busy_total = 0;
  for (std::int64_t b : station_busy) busy_total += b;
  res.steps = steps;
  res.mean_station_utilization =
      steps > 0 ? static_cast<double>(busy_total) /
                      static_cast<double>(steps * num_stations)
                : 0.0;
  return res;
}

}  // namespace dgs::core
