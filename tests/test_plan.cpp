// Downlink plan / ack report wire format: round trips, sizes, corruption
// detection.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/plan.h"

namespace dgs::core {
namespace {

const util::Epoch kEpoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});

DownlinkPlan sample_plan(int entries) {
  DownlinkPlan plan;
  plan.sat_id = 90042;
  plan.epoch = kEpoch;
  for (int i = 0; i < entries; ++i) {
    PlanEntry e;
    e.start_offset_s = 600u * i;
    e.duration_s = static_cast<std::uint16_t>(300 + i);
    e.station_id = static_cast<std::uint16_t>(i % 173);
    e.modcod_index = static_cast<std::uint8_t>(i % 28);
    e.channels = static_cast<std::uint8_t>(1 + i % 6);
    plan.entries.push_back(e);
  }
  return plan;
}

TEST(PlanWire, RoundTrip) {
  const DownlinkPlan plan = sample_plan(17);
  const auto bytes = serialize(plan);
  EXPECT_EQ(bytes.size(), plan_wire_size(17));
  const DownlinkPlan back = parse_plan(bytes);
  EXPECT_EQ(back.sat_id, plan.sat_id);
  EXPECT_NEAR(back.epoch.jd(), plan.epoch.jd(), 1e-12);
  ASSERT_EQ(back.entries.size(), plan.entries.size());
  for (std::size_t i = 0; i < plan.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].start_offset_s, plan.entries[i].start_offset_s);
    EXPECT_EQ(back.entries[i].duration_s, plan.entries[i].duration_s);
    EXPECT_EQ(back.entries[i].station_id, plan.entries[i].station_id);
    EXPECT_EQ(back.entries[i].modcod_index, plan.entries[i].modcod_index);
    EXPECT_EQ(back.entries[i].channels, plan.entries[i].channels);
  }
}

TEST(PlanWire, EmptyPlanRoundTrips) {
  const auto bytes = serialize(sample_plan(0));
  EXPECT_EQ(parse_plan(bytes).entries.size(), 0u);
}

TEST(PlanWire, CorruptionIsDetectedEverywhere) {
  auto bytes = serialize(sample_plan(5));
  for (std::size_t i = 0; i < bytes.size(); i += 3) {
    auto corrupted = bytes;
    corrupted[i] ^= 0x40;
    EXPECT_THROW(parse_plan(corrupted), std::invalid_argument)
        << "byte " << i;
  }
}

TEST(PlanWire, TruncationIsDetected) {
  const auto bytes = serialize(sample_plan(5));
  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, bytes.size() - 5,
                           bytes.size() - 1}) {
    EXPECT_THROW(parse_plan(std::span(bytes).subspan(0, keep)),
                 std::invalid_argument)
        << "kept " << keep;
  }
}

TEST(PlanWire, WrongMagicRejected) {
  const auto plan_bytes = serialize(sample_plan(2));
  AckReport report;
  report.sat_id = 1;
  report.collated_at = kEpoch;
  const auto ack_bytes = serialize(report);
  EXPECT_THROW(parse_plan(ack_bytes), std::invalid_argument);
  EXPECT_THROW(parse_ack_report(plan_bytes), std::invalid_argument);
}

TEST(PlanWire, RejectsOversizedPlan) {
  DownlinkPlan plan = sample_plan(1);
  plan.entries.resize(70'000);
  EXPECT_THROW(serialize(plan), std::invalid_argument);
}

TEST(AckWire, RoundTrip) {
  AckReport report;
  report.sat_id = 90001;
  report.collated_at = kEpoch.plus_seconds(4321.5);
  report.ranges.push_back(AckRange{0, 1'000'000'000});
  report.ranges.push_back(AckRange{2'000'000'000, 0xFFFFFFFFFFFFull});
  const auto bytes = serialize(report);
  EXPECT_EQ(bytes.size(), ack_wire_size(2));
  const AckReport back = parse_ack_report(bytes);
  EXPECT_EQ(back.sat_id, report.sat_id);
  ASSERT_EQ(back.ranges.size(), 2u);
  EXPECT_EQ(back.ranges[1].last_byte, 0xFFFFFFFFFFFFull);
}

TEST(PlanWire, WireSizesAreCompact) {
  // A full-day DGS plan (a few hundred slots) must be a few kB: trivially
  // uploadable over a hundreds-of-kbps TT&C channel in one contact.
  EXPECT_EQ(plan_wire_size(0), 23u);
  EXPECT_EQ(plan_wire_size(300), 23u + 3000u);
  EXPECT_LT(plan_wire_size(400), 5000u);
}

TEST(UploadDuration, HandshakePlusSerialization) {
  EXPECT_NEAR(upload_duration_s(0, 256e3), 2.0, 1e-12);
  EXPECT_NEAR(upload_duration_s(3200, 256e3), 2.0 + 0.1, 1e-12);
  EXPECT_NEAR(upload_duration_s(3200, 256e3, 0.0), 0.1, 1e-12);
}

TEST(UploadDuration, RejectsBadInputs) {
  EXPECT_THROW(upload_duration_s(100, 0.0), std::invalid_argument);
  EXPECT_THROW(upload_duration_s(100, 1e3, -1.0), std::invalid_argument);
}

TEST(UploadDuration, FullDayPlanFitsInSeconds) {
  // The feasibility check behind the hybrid design: plan + acks for a full
  // day upload in a few seconds of a 7-10 minute TX pass.
  const std::size_t plan_bytes = plan_wire_size(300);
  const std::size_t ack_bytes = ack_wire_size(200);
  const double t = upload_duration_s(plan_bytes + ack_bytes, 256e3);
  EXPECT_LT(t, 10.0);
}

}  // namespace
}  // namespace dgs::core
