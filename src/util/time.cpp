#include "src/util/time.h"

#include <cmath>
#include <cstdio>

#include "src/util/angles.h"
#include "src/util/constants.h"

namespace dgs::util {

double julian_date(const DateTime& dt) {
  // Vallado, "Fundamentals of Astrodynamics", algorithm 14 (valid 1900-2099).
  const double jd =
      367.0 * dt.year -
      std::floor((7.0 * (dt.year + std::floor((dt.month + 9.0) / 12.0))) /
                 4.0) +
      std::floor(275.0 * dt.month / 9.0) + dt.day + 1721013.5;
  const double day_frac =
      (dt.second + dt.minute * 60.0 + dt.hour * 3600.0) / kSecondsPerDay;
  return jd + day_frac;
}

DateTime calendar_from_jd(double jd) {
  // Vallado, algorithm 22.
  const double t1900 = (jd - 2415019.5) / 365.25;
  int year = 1900 + static_cast<int>(std::floor(t1900));
  auto leap_years = [](int y) {
    return static_cast<int>(std::floor((y - 1900 - 1) * 0.25));
  };
  double days =
      (jd - 2415019.5) - ((year - 1900) * 365.0 + leap_years(year));
  if (days < 1.0) {
    year -= 1;
    days = (jd - 2415019.5) - ((year - 1900) * 365.0 + leap_years(year));
  }
  const bool leap = (year % 4 == 0);  // valid 1900-2099
  static constexpr int kMonthLen[12] = {31, 28, 31, 30, 31, 30,
                                        31, 31, 30, 31, 30, 31};
  const int day_of_year = static_cast<int>(std::floor(days));
  int month = 1;
  int accum = 0;
  for (int m = 0; m < 12; ++m) {
    int len = kMonthLen[m] + ((m == 1 && leap) ? 1 : 0);
    if (accum + len >= day_of_year) {
      month = m + 1;
      break;
    }
    accum += len;
  }
  const int day = day_of_year - accum;

  double frac = days - day_of_year;
  // Guard against negative fractional residue from floating error.
  if (frac < 0.0) frac = 0.0;
  double secs = frac * kSecondsPerDay;
  int hour = static_cast<int>(std::floor(secs / 3600.0));
  secs -= hour * 3600.0;
  int minute = static_cast<int>(std::floor(secs / 60.0));
  double second = secs - minute * 60.0;
  // Normalize boundary cases like 23:59:60.0000001.
  if (second >= 60.0 - 1e-7) {
    second = 0.0;
    if (++minute == 60) {
      minute = 0;
      ++hour;
    }
  }
  if (hour == 24) hour = 23, minute = 59, second = 59.999999;
  return DateTime{year, month, day, hour, minute, second};
}

double gmst(double jd_ut1) {
  // IAU-82 GMST model (Vallado eq. 3-47), consistent with the TEME frame.
  const double t = (jd_ut1 - 2451545.0) / 36525.0;
  double g = 67310.54841 +
             (876600.0 * 3600.0 + 8640184.812866) * t +
             0.093104 * t * t - 6.2e-6 * t * t * t;  // seconds
  g = std::fmod(g, kSecondsPerDay);
  double rad = g * kTwoPi / kSecondsPerDay;
  return wrap_two_pi(rad);
}

Epoch::Epoch(const DateTime& dt) {
  const double jd = julian_date(dt);
  jd_whole_ = std::floor(jd);
  jd_frac_ = jd - jd_whole_;
}

Epoch Epoch::from_jd(double jd) {
  Epoch e(std::floor(jd), jd - std::floor(jd));
  return e;
}

Epoch Epoch::from_tle_epoch(int two_digit_year, double day_of_year) {
  // Spacetrack convention: years 57-99 => 1957-1999, 00-56 => 2000-2056.
  const int year = two_digit_year < 57 ? 2000 + two_digit_year
                                       : 1900 + two_digit_year;
  // Day-of-year 1.0 == Jan 1, 00:00 UTC.
  const double jd_jan1 = julian_date(DateTime{year, 1, 1, 0, 0, 0.0});
  return from_jd(jd_jan1 + (day_of_year - 1.0));
}

void Epoch::normalize() {
  const double shift = std::floor(jd_frac_);
  jd_whole_ += shift;
  jd_frac_ -= shift;
}

double Epoch::seconds_since(const Epoch& earlier) const {
  const double dwhole = jd_whole_ - earlier.jd_whole_;
  const double dfrac = jd_frac_ - earlier.jd_frac_;
  return (dwhole + dfrac) * kSecondsPerDay;
}

Epoch Epoch::plus_seconds(double s) const {
  Epoch e = *this;
  e.jd_frac_ += s / kSecondsPerDay;
  e.normalize();
  return e;
}

std::string Epoch::to_string() const {
  const DateTime dt = utc();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ", dt.year,
                dt.month, dt.day, dt.hour, dt.minute,
                static_cast<int>(dt.second));
  return buf;
}

}  // namespace dgs::util
