// TT&C (tracking, telemetry & command) S-band uplink model.
//
// The paper's hybrid design (§1, §2) rests on the observation that uplink
// is narrowband: "ground stations today support Gbps downlink but only
// hundreds of Kbps uplink", carried in S-band (2025-2110 MHz) while the
// imagery comes down in X-band.  DGS uses the uplink only at
// transmit-capable stations, to push the downlink plan and the collated
// acks.  This module sizes that channel: a command uplink budget and the
// discrete CCSDS-style command rates it supports.
#pragma once

namespace dgs::link {

/// Transmit-capable ground station's command chain.
struct TtcUplinkSpec {
  double frequency_hz = 2.07e9;      ///< S-band TT&C allocation.
  double tx_power_w = 10.0;          ///< Power amplifier output.
  double dish_diameter_m = 1.0;      ///< Same small dish, S-band feed.
  double aperture_efficiency = 0.5;
  double line_loss_db = 1.0;
};

/// Satellite command receiver.
struct SatCommandReceiver {
  double antenna_gain_dbi = 0.0;     ///< Near-omni TT&C patch/whip.
  double system_noise_temp_k = 500.0;  ///< Uncooled front end + body noise.
  double implementation_loss_db = 1.5;
};

/// Discrete command rates (CCSDS TC-style BPSK with rate-1/2 coding):
/// each needs Eb/N0 >= 4.5 dB plus margin at the demodulator.
struct TtcRate {
  double bitrate_bps;
};

/// Uplink C/N0 [dBHz] at slant range `range_km` (> 0).
double ttc_uplink_cn0_dbhz(const TtcUplinkSpec& gs,
                           const SatCommandReceiver& sat, double range_km);

/// Highest supported command rate at the given C/N0, from the standard
/// ladder {4, 16, 64, 256, 1024} kbps, requiring Eb/N0 >= 4.5 dB +
/// `margin_db`.  Returns 0 when even 4 kbps cannot close.
double ttc_select_rate_bps(double cn0_dbhz, double margin_db = 3.0);

/// Convenience: achievable uplink bitrate for the whole chain.
double ttc_uplink_rate_bps(const TtcUplinkSpec& gs,
                           const SatCommandReceiver& sat, double range_km,
                           double margin_db = 3.0);

}  // namespace dgs::link
