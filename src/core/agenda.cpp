#include "src/core/agenda.h"

#include <map>
#include <ostream>

#include "src/link/dvbs2_framing.h"
#include "src/orbit/frames.h"
#include "src/util/angles.h"

namespace dgs::core {
namespace {

Pointing pointing_at(const VisibilityEngine& engine, int sat, int station,
                     const util::Epoch& when) {
  const util::Vec3 sat_ecef = engine.satellite_ecef(sat, when);
  const orbit::LookAngles la =
      orbit::look_angles(engine.station(station).location, sat_ecef);
  return Pointing{util::rad2deg(la.azimuth_rad),
                  util::rad2deg(la.elevation_rad)};
}

}  // namespace

std::vector<StationAgenda> build_agendas(const VisibilityEngine& engine,
                                         const HorizonPlan& plan,
                                         const util::Epoch& start,
                                         double step_seconds) {
  std::vector<StationAgenda> agendas(engine.num_stations());
  for (int g = 0; g < engine.num_stations(); ++g) agendas[g].station = g;

  // Open tracking job per station: satellite id and last step seen.
  struct Open {
    int sat = -1;
    int last_step = -2;
    int first_step = 0;
    double bytes = 0.0;
    std::uint8_t modcod = 0;
  };
  std::map<int, Open> open;

  auto close_job = [&](int g, const Open& o, int /*end_step*/) {
    AgendaEntry e;
    e.sat = o.sat;
    e.start = start.plus_seconds(o.first_step * step_seconds);
    e.stop = start.plus_seconds((o.last_step + 1) * step_seconds);
    e.expected_bytes = o.bytes;
    e.modcod_index = o.modcod;
    e.aos_pointing = pointing_at(engine, o.sat, g, e.start);
    e.los_pointing = pointing_at(engine, o.sat, g, e.stop);
    const util::Epoch mid =
        e.start.plus_seconds(e.duration_seconds() / 2.0);
    e.tca_pointing = pointing_at(engine, o.sat, g, mid);
    agendas[g].entries.push_back(e);
  };

  for (int k = 0; k < static_cast<int>(plan.per_step.size()); ++k) {
    for (const ContactEdge& e : plan.per_step[k]) {
      auto& o = open[e.station];
      if (o.sat == e.sat && o.last_step == k - 1) {
        o.last_step = k;
        o.bytes += e.predicted_rate_bps * step_seconds / 8.0;
      } else {
        if (o.sat != -1) close_job(e.station, o, k);
        o.sat = e.sat;
        o.first_step = k;
        o.last_step = k;
        o.bytes = e.predicted_rate_bps * step_seconds / 8.0;
        o.modcod = e.modcod != nullptr ? link::modcod_index(*e.modcod) : 0;
      }
    }
    // Close jobs whose station went idle this step.
    for (auto& [g, o] : open) {
      if (o.sat != -1 && o.last_step < k) {
        close_job(g, o, k);
        o.sat = -1;
        o.last_step = -2;
      }
    }
  }
  for (auto& [g, o] : open) {
    if (o.sat != -1) {
      close_job(g, o, static_cast<int>(plan.per_step.size()));
    }
  }
  return agendas;
}

void write_agenda_csv(std::ostream& out, const StationAgenda& agenda) {
  out << "sat,start,stop,duration_s,az_aos_deg,el_aos_deg,az_los_deg,"
         "el_los_deg,expected_gb,modcod\n";
  char buf[256];
  for (const AgendaEntry& e : agenda.entries) {
    std::snprintf(buf, sizeof(buf),
                  "%d,%s,%s,%.0f,%.1f,%.1f,%.1f,%.1f,%.3f,%s\n", e.sat,
                  e.start.to_string().c_str(), e.stop.to_string().c_str(),
                  e.duration_seconds(), e.aos_pointing.azimuth_deg,
                  e.aos_pointing.elevation_deg, e.los_pointing.azimuth_deg,
                  e.los_pointing.elevation_deg, e.expected_bytes / 1e9,
                  link::modcod_by_index(e.modcod_index).name.data());
    out << buf;
  }
}

}  // namespace dgs::core
