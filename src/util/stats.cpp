#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "src/util/check.h"

namespace dgs::util {

double percentile(std::span<const double> sorted_samples, double pct) {
  DGS_ENSURE(!sorted_samples.empty(), "percentile of empty sample set");
  DGS_ENSURE(pct >= 0.0 && pct <= 100.0,
             "pct=" << pct << " outside [0, 100]");
  const double rank =
      pct / 100.0 * static_cast<double>(sorted_samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac;
}

void SampleSet::add(double v) {
  samples_.push_back(v);
  sorted_ = samples_.size() <= 1;
}

void SampleSet::add_all(std::span<const double> vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  sorted_ = samples_.size() <= 1;
}

const std::vector<double>& SampleSet::sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_;
}

double SampleSet::min() const { return sorted().front(); }
double SampleSet::max() const { return sorted().back(); }

double SampleSet::mean() const {
  DGS_ENSURE(!samples_.empty(), "mean of empty sample set");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::percentile(double pct) const {
  return dgs::util::percentile(sorted(), pct);
}

double SampleSet::cdf(double x) const {
  const auto& s = sorted();
  if (s.empty()) return 0.0;
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) /
         static_cast<double>(s.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_curve(int points) const {
  DGS_ENSURE_GE(points, 2);
  std::vector<std::pair<double, double>> curve;
  if (empty()) return curve;
  const double lo = min(), hi = max();
  curve.reserve(points);
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * i / (points - 1);
    curve.emplace_back(x, cdf(x));
  }
  return curve;
}

std::string summary_row(const SampleSet& s, const std::string& unit) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.1f %s (p90: %.1f, p99: %.1f)",
                s.percentile(50.0), unit.c_str(), s.percentile(90.0),
                s.percentile(99.0));
  return buf;
}

}  // namespace dgs::util
