file(REMOVE_RECURSE
  "CMakeFiles/fig2_station_map.dir/fig2_station_map.cpp.o"
  "CMakeFiles/fig2_station_map.dir/fig2_station_map.cpp.o.d"
  "fig2_station_map"
  "fig2_station_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_station_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
