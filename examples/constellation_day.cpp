// A day in the life of a DGS deployment.
//
// Runs the whole pipeline at a moderate scale (80 satellites, 100 ground
// stations, 12 h) and prints the operator-facing summary: delivery,
// latency, backlog, ack behaviour, per-region utilization.  The full
// paper-scale experiments live in bench/.
//
// Usage: ./build/examples/constellation_day [num_sats] [num_stations]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/core/dgs.h"

int main(int argc, char** argv) {
  using namespace dgs;

  const int num_sats = argc > 1 ? std::atoi(argv[1]) : 80;
  const int num_stations = argc > 2 ? std::atoi(argv[2]) : 100;
  if (num_sats <= 0 || num_stations <= 0) {
    std::fprintf(stderr, "usage: %s [num_sats > 0] [num_stations > 0]\n",
                 argv[0]);
    return 1;
  }

  const util::Epoch epoch(util::DateTime{2020, 11, 4, 0, 0, 0.0});
  groundseg::NetworkOptions net;
  net.num_satellites = num_sats;
  net.num_stations = num_stations;
  const auto sats = groundseg::generate_constellation(net, epoch);
  const auto stations = groundseg::generate_dgs_stations(net);
  weather::SyntheticWeatherProvider wx(2020, epoch, 13.0);

  std::printf("DGS day simulation: %d satellites, %d stations "
              "(%d transmit-capable)\n",
              num_sats, num_stations,
              static_cast<int>(std::count_if(
                  stations.begin(), stations.end(),
                  [](const auto& g) { return g.tx_capable; })));

  core::SimulationOptions opts;
  opts.start = epoch;
  opts.duration_hours = 12.0;
  opts.step_seconds = 60.0;
  core::Simulator sim(sats, stations, &wx, opts);
  const core::SimulationResult r = sim.run();

  std::printf("\n--- delivery ---\n");
  std::printf("generated %.2f TB, delivered %.2f TB (%.1f%%)\n",
              r.total_generated_bytes / 1e12, r.total_delivered_bytes / 1e12,
              100.0 * r.delivered_fraction());
  std::printf("scheduled slots: %lld (%lld lost to mis-predicted weather)\n",
              static_cast<long long>(r.assignments),
              static_cast<long long>(r.failed_assignments));

  std::printf("\n--- latency (capture -> ground) ---\n");
  std::printf("median %.0f min, p90 %.0f min, p99 %.0f min\n",
              r.latency_minutes.median(), r.latency_minutes.percentile(90.0),
              r.latency_minutes.percentile(99.0));

  std::printf("\n--- per-satellite backlog at end of horizon ---\n");
  std::printf("median %.2f GB, p90 %.2f GB, worst %.2f GB\n",
              r.backlog_gb.median(), r.backlog_gb.percentile(90.0),
              r.backlog_gb.max());

  std::printf("\n--- hybrid (ack-free) downlink ---\n");
  if (!r.ack_delay_minutes.empty()) {
    std::printf("ack delay: median %.0f min, p99 %.0f min\n",
                r.ack_delay_minutes.median(),
                r.ack_delay_minutes.percentile(99.0));
  }
  util::SampleSet storage;
  for (const auto& o : r.per_satellite) {
    storage.add(o.storage_high_water_bytes / 1e9);
  }
  std::printf("on-board storage high water: median %.1f GB, p99 %.1f GB\n",
              storage.median(), storage.percentile(99.0));

  std::printf("\n--- busiest satellites (top 5 by backlog) ---\n");
  std::vector<int> order(r.per_satellite.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return r.per_satellite[a].backlog_bytes > r.per_satellite[b].backlog_bytes;
  });
  for (int i = 0; i < 5 && i < static_cast<int>(order.size()); ++i) {
    const auto& o = r.per_satellite[order[i]];
    std::printf("  %-12s incl %5.1f deg  backlog %6.2f GB  delivered "
                "%6.2f GB  tx contacts %d\n",
                sats[order[i]].name.c_str(),
                sats[order[i]].tle.inclination_deg, o.backlog_bytes / 1e9,
                o.delivered_bytes / 1e9, o.tx_contacts);
  }
  std::printf("\nmean station utilization: %.1f%%\n",
              100.0 * r.mean_station_utilization);
  return 0;
}
