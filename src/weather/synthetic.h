// Synthetic spatio-temporally correlated weather (Dark Sky substitute).
//
// The generator materializes a deterministic population of moving storm
// systems for a simulation horizon.  Each storm is a Gaussian rain cell with
// a wider cloud shield, drifting (westerlies poleward of 30 deg, easterlies
// in the tropics) over its lifetime.  Rain at a point is the superposition
// of nearby cells; clouds add a latitude-band background.  Forecasts degrade
// with lead time by perturbing the queried position/time with deterministic
// noise, which reproduces the operationally relevant failure mode: a
// mis-placed storm, not white noise on the rain rate.
#pragma once

#include <cstdint>
#include <vector>

#include "src/weather/provider.h"

namespace dgs::weather {

struct SyntheticWeatherOptions {
  /// Expected number of simultaneously active storm systems world-wide.
  /// A few hundred matches the global population of significant
  /// precipitation systems.
  int mean_active_storms = 250;
  double mean_lifetime_hours = 12.0;
  double mean_radius_km = 250.0;
  /// Forecast position error growth [km per hour of lead time].
  double forecast_drift_km_per_hour = 30.0;
};

class SyntheticWeatherProvider final : public WeatherProvider {
 public:
  /// Generates storms covering [start, start + horizon_hours].  Queries
  /// outside the horizon see only background climatology.
  SyntheticWeatherProvider(std::uint64_t seed, const util::Epoch& start,
                           double horizon_hours,
                           const SyntheticWeatherOptions& opts = {});

  WeatherSample actual(double latitude_rad, double longitude_rad,
                       const util::Epoch& when) const override;

  WeatherSample forecast(double latitude_rad, double longitude_rad,
                         const util::Epoch& when,
                         double lead_seconds) const override;

  /// Number of storm systems generated (all lifetimes, whole horizon).
  std::size_t storm_count() const { return storms_.size(); }

 private:
  struct Storm {
    double lat0_rad, lon0_rad;     ///< Centre at birth.
    double vel_east_rad_s;         ///< Zonal drift.
    double vel_north_rad_s;        ///< Meridional drift.
    double birth_s, death_s;       ///< Seconds relative to start_.
    double radius_km;              ///< Rain-core Gaussian sigma.
    double peak_rain_mm_h;
    double cloud_kg_m2;            ///< Peak cloud liquid of the shield.
  };

  WeatherSample sample_at(double lat, double lon, double t_s) const;

  util::Epoch start_;
  double horizon_s_;
  SyntheticWeatherOptions opts_;
  std::uint64_t seed_;
  std::vector<Storm> storms_;
};

}  // namespace dgs::weather
