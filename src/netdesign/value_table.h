// Per-(candidate, pass) marginal-value tables (DESIGN.md §15).
//
// The selection objective is a weighted max-coverage function over
// (satellite, step) cells: a cell covered by several selected stations
// credits only the best of them, mirroring the scheduler's
// one-station-per-satellite matching.  The table precomputes, for every
// candidate, its visible passes and the availability-discounted downlink
// value of each step in them, by sweeping the VisibilityEngine over the
// horizon grid once — O(pool x steps) link budgets up front so the greedy
// optimizer's gain evaluations touch no orbital mechanics at all.
#pragma once

#include <vector>

#include "src/netdesign/candidate_pool.h"
#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"
#include "src/util/time.h"
#include "src/weather/provider.h"

namespace dgs::netdesign {

/// One contiguous visibility window of (candidate, sat): step_values[j]
/// is the value (GB, availability-discounted) of grid step
/// first_step + j.
struct PassValue {
  int sat = 0;
  int first_step = 0;
  std::vector<double> step_values;
};

/// Everything the optimizer needs to know about one candidate.
struct CandidateEntry {
  int candidate = 0;        ///< Pool index (== GroundStation::id for
                            ///< generated pools).
  double cost = 0.0;        ///< CandidateSite::install_cost.
  double availability = 1.0;
  std::vector<PassValue> passes;  ///< Discovery order (ascending
                                  ///< first_step, engine edge order within
                                  ///< a step).

  /// Total value if this candidate were the only selected station.
  double standalone_gb() const;
};

/// The precomputed instance the optimizer runs on.  Hand-buildable in
/// tests; build_value_table is the production producer.
struct ValueTable {
  int num_sats = 0;
  int num_steps = 0;
  double step_seconds = 0.0;
  std::vector<CandidateEntry> candidates;
};

struct ValueTableOptions {
  util::Epoch start;
  double duration_hours = 24.0;
  double step_seconds = 60.0;
  /// Forwarded to the visibility engine's hot loops; any thread count
  /// yields a bit-identical table (engine contract, DESIGN.md §9).
  util::ParallelConfig parallel;
  /// Borrowed; null disables instrumentation (dgs_netdesign_* counters).
  obs::Registry* metrics = nullptr;
};

/// Sweeps the engine over the horizon grid and collects each candidate's
/// passes.  Cell value = availability * predicted_rate_bps * step / 8e9
/// (GB deliverable in that step at the scheduled MODCOD, discounted by
/// how often the site is up).  `forecast_weather` may be null (clear-sky
/// planning).
ValueTable build_value_table(
    const std::vector<groundseg::SatelliteConfig>& sats,
    const std::vector<CandidateSite>& pool,
    const weather::WeatherProvider* forecast_weather,
    const ValueTableOptions& opts);

}  // namespace dgs::netdesign
