// Contract-macro semantics (src/util/check.h) and the negative paths of the
// matching audits (validate_matching / validate_b_matching) that the
// scheduler runs under DGS_DCHECK.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/matching.h"
#include "src/util/check.h"

namespace dgs {
namespace {

using core::Edge;
using core::Matching;

::testing::AssertionResult Contains(const std::string& haystack,
                                    const std::string& needle) {
  if (haystack.find(needle) != std::string::npos) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "expected \"" << haystack << "\" to contain \"" << needle << "\"";
}

// --- DGS_ENSURE: throws std::invalid_argument with a formatted report ------

TEST(CheckTest, EnsurePassesSilently) {
  EXPECT_NO_THROW(DGS_ENSURE(1 + 1 == 2));
  EXPECT_NO_THROW(DGS_ENSURE_GT(2.0, 1.0));
}

TEST(CheckTest, EnsureThrowsInvalidArgument) {
  EXPECT_THROW(DGS_ENSURE(false), std::invalid_argument);
}

TEST(CheckTest, EnsureMessageCarriesLocationAndExpression) {
  try {
    const double bytes = -3.5;
    DGS_ENSURE(bytes >= 0.0, "bytes=" << bytes);
    FAIL() << "DGS_ENSURE did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_TRUE(Contains(what, "DGS_ENSURE failed at "));
    EXPECT_TRUE(Contains(what, "test_check.cpp"));
    EXPECT_TRUE(Contains(what, "bytes >= 0.0"));
    EXPECT_TRUE(Contains(what, "bytes=-3.5"));
  }
}

TEST(CheckTest, EnsureOpCapturesBothOperands) {
  try {
    const int queued = 7;
    const int capacity = 3;
    DGS_ENSURE_LE(queued, capacity);
    FAIL() << "DGS_ENSURE_LE did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_TRUE(Contains(what, "queued <= capacity"));
    EXPECT_TRUE(Contains(what, "7 vs 3"));
  }
}

TEST(CheckTest, EnsureOpEvaluatesOperandsExactlyOnce) {
  int calls = 0;
  const auto count = [&calls] { return ++calls; };
  DGS_ENSURE_GE(count(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, EnsureConditionNotReevaluatedOnSuccess) {
  int calls = 0;
  const auto touch = [&calls] {
    ++calls;
    return true;
  };
  DGS_ENSURE(touch());
  EXPECT_EQ(calls, 1);
}

// --- DGS_CHECK: aborts with the report on stderr ---------------------------

TEST(CheckDeathTest, CheckAbortsWithFormattedReport) {
  const int station = 4;
  EXPECT_DEATH(DGS_CHECK(station < 2, "station=" << station),
               "DGS_CHECK failed at .*test_check\\.cpp:[0-9]+: "
               "station < 2 \\(station=4\\)");
}

TEST(CheckDeathTest, CheckOpReportsOperands) {
  EXPECT_DEATH(DGS_CHECK_EQ(2 + 2, 5), "2 \\+ 2 == 5 \\(4 vs 5\\)");
}

TEST(CheckTest, CheckPassesSilently) {
  DGS_CHECK(true);
  DGS_CHECK_LT(1, 2);
}

// --- DGS_DCHECK: active iff DGS_ENABLE_DCHECKS -----------------------------

#ifdef DGS_ENABLE_DCHECKS
TEST(CheckDeathTest, DcheckActiveInDcheckBuilds) {
  EXPECT_DEATH(DGS_DCHECK(false, "audit context"), "audit context");
}
#else
TEST(CheckTest, DcheckCompiledOutSkipsEvaluation) {
  int calls = 0;
  const auto count = [&calls] { return ++calls > 0; };
  DGS_DCHECK(count());
  EXPECT_EQ(calls, 0);
}
#endif

// --- validate_matching: hand-constructed violations ------------------------

TEST(ValidateMatchingTest, AcceptsStableMatching) {
  const std::vector<Edge> edges = {{0, 0, 5.0}, {0, 1, 1.0}, {1, 1, 4.0}};
  const Matching m = core::stable_matching(edges, 2, 2);
  EXPECT_EQ(core::validate_matching(edges, m, 2, 2), "");
}

TEST(ValidateMatchingTest, RejectsEdgeIndexOutOfRange) {
  const std::vector<Edge> edges = {{0, 0, 5.0}};
  EXPECT_TRUE(
      Contains(core::validate_matching(edges, {3}, 1, 1), "edge index 3"));
}

TEST(ValidateMatchingTest, RejectsEndpointOutOfRange) {
  const std::vector<Edge> edges = {{2, 0, 5.0}};
  EXPECT_TRUE(Contains(core::validate_matching(edges, {0}, 2, 2),
                       "endpoint out of range"));
}

TEST(ValidateMatchingTest, RejectsNonPositiveWeight) {
  const std::vector<Edge> edges = {{0, 0, 0.0}};
  EXPECT_TRUE(Contains(core::validate_matching(edges, {0}, 1, 1),
                       "non-positive weight"));
}

TEST(ValidateMatchingTest, RejectsDoubleBookedStation) {
  // Both satellites assigned to station 0.
  const std::vector<Edge> edges = {{0, 0, 5.0}, {1, 0, 4.0}};
  EXPECT_TRUE(Contains(core::validate_matching(edges, {0, 1}, 2, 1,
                                               /*require_stable=*/false),
                       "station 0 double-booked"));
}

TEST(ValidateMatchingTest, RejectsDoubleBookedSatellite) {
  const std::vector<Edge> edges = {{0, 0, 5.0}, {0, 1, 4.0}};
  EXPECT_TRUE(Contains(core::validate_matching(edges, {0, 1}, 1, 2,
                                               /*require_stable=*/false),
                       "satellite 0 double-booked"));
}

TEST(ValidateMatchingTest, RejectsUnstableMatching) {
  // Edge (0,0) has weight 9 — the blocking pair: sat 0 and station 0 both
  // strictly prefer each other over the cross assignment below.
  const std::vector<Edge> edges = {
      {0, 0, 9.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}};
  const Matching crossed = {1, 2};  // sat0<->gs1, sat1<->gs0
  EXPECT_TRUE(
      Contains(core::validate_matching(edges, crossed, 2, 2), "unstable"));
  // The same assignment passes once stability is not required.
  EXPECT_EQ(core::validate_matching(edges, crossed, 2, 2,
                                    /*require_stable=*/false),
            "");
}

// --- validate_b_matching: capacity and stability ---------------------------

TEST(ValidateBMatchingTest, AcceptsCapacitatedResult) {
  const std::vector<Edge> edges = {{0, 0, 5.0}, {1, 0, 4.0}, {2, 0, 3.0}};
  const std::vector<int> caps = {2};
  const Matching m = core::stable_b_matching(edges, 3, caps);
  EXPECT_EQ(core::validate_b_matching(edges, m, 3, caps), "");
}

TEST(ValidateBMatchingTest, RejectsOverCapacityStation) {
  const std::vector<Edge> edges = {{0, 0, 5.0}, {1, 0, 4.0}, {2, 0, 3.0}};
  EXPECT_TRUE(Contains(core::validate_b_matching(edges, {0, 1, 2}, 3, {2},
                                                 /*require_stable=*/false),
                       "station 0 over capacity"));
}

TEST(ValidateBMatchingTest, RejectsUnstableCapacitatedMatching) {
  // Station 0 (capacity 1) holds its worst suitor while a better one sits
  // on a worse station.
  const std::vector<Edge> edges = {{0, 0, 9.0}, {0, 1, 1.0}, {1, 0, 2.0}};
  const Matching m = {1, 2};  // sat0->gs1 (w=1), sat1->gs0 (w=2)
  EXPECT_TRUE(
      Contains(core::validate_b_matching(edges, m, 2, {1, 1}), "unstable"));
}

}  // namespace
}  // namespace dgs
