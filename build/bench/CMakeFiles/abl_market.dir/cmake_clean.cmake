file(REMOVE_RECURSE
  "CMakeFiles/abl_market.dir/abl_market.cpp.o"
  "CMakeFiles/abl_market.dir/abl_market.cpp.o.d"
  "abl_market"
  "abl_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
