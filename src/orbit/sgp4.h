// SGP4 orbit propagator (near-earth variant).
//
// From-scratch implementation of the SGP4 analytical theory in the
// formulation of Vallado et al., "Revisiting Spacetrack Report #3" (AIAA
// 2006-6753), using the WGS-72 gravity constants that NORAD element sets are
// fitted against.  Output state vectors are in the TEME (True Equator, Mean
// Equinox) inertial frame of the element set epoch, in kilometres and
// kilometres per second.
//
// Scope: the near-earth theory only.  All satellites in the paper's
// evaluation are LEO (300-600 km, period ~90 min); element sets with periods
// of 225 minutes or more require the deep-space extension (SDP4) and are
// rejected at construction with std::domain_error.
//
// Two call surfaces share one propagation kernel (sgp4_propagate):
//   * Sgp4 — one element set, one state per call;
//   * Sgp4Batch (sgp4_batch.h) — a whole constellation in SoA layout,
//     propagated per scheduling step.
// Both produce bit-identical states for the same element set and time.
#pragma once

#include "src/orbit/tle.h"
#include "src/util/time.h"
#include "src/util/vec3.h"

namespace dgs::orbit {

/// Position/velocity state in the TEME frame.
struct TemeState {
  util::Vec3 position_km;
  util::Vec3 velocity_km_s;
};

/// The derived initialization constants of one near-earth element set —
/// everything sgp4_propagate needs besides the time offset.  Produced by
/// sgp4_init; field names follow the reference theory.  Kept as a plain
/// aggregate so Sgp4Batch can scatter/gather it through per-field arrays.
struct Sgp4Params {
  // Elements at epoch (radians, rad/min).
  double ecco = 0.0, inclo = 0.0, nodeo = 0.0, argpo = 0.0, mo = 0.0;
  double no_unkozai = 0.0;
  double bstar = 0.0;

  bool isimp = false;
  double aycof = 0.0, con41 = 0.0, cc1 = 0.0, cc4 = 0.0, cc5 = 0.0;
  double d2 = 0.0, d3 = 0.0, d4 = 0.0;
  double delmo = 0.0, eta = 0.0, argpdot = 0.0, omgcof = 0.0;
  double sinmao = 0.0, t2cof = 0.0, t3cof = 0.0, t4cof = 0.0, t5cof = 0.0;
  double x1mth2 = 0.0, x7thm1 = 0.0, mdot = 0.0, nodedot = 0.0;
  double xlcof = 0.0, xmcof = 0.0, nodecf = 0.0;
};

/// Recovers the Brouwer mean motion and derives the propagation constants
/// for one element set.  Throws std::domain_error for deep-space (period
/// >= 225 min) or physically invalid element sets.
Sgp4Params sgp4_init(const Tle& tle);

/// The propagation kernel: state at `tsince_minutes` after the element set
/// epoch (may be negative).  Throws std::domain_error if the mean elements
/// become non-physical (eccentricity out of range, negative semi-latus
/// rectum) or the satellite has decayed below the Earth's surface.
TemeState sgp4_propagate(const Sgp4Params& p, double tsince_minutes);

class Sgp4 {
 public:
  /// Initializes the propagator from a parsed element set.
  /// Throws std::domain_error for deep-space (period >= 225 min) or
  /// physically invalid element sets.
  explicit Sgp4(const Tle& tle)
      : epoch_(tle.epoch), satnum_(tle.satnum), p_(sgp4_init(tle)) {}

  /// Propagates to `tsince_minutes` after the element set epoch (may be
  /// negative).  Throws std::domain_error if the mean elements become
  /// non-physical (eccentricity out of range, negative semi-latus rectum)
  /// or the satellite has decayed below the Earth's surface.
  TemeState propagate(double tsince_minutes) const {
    return sgp4_propagate(p_, tsince_minutes);
  }

  /// Propagates to an absolute epoch.
  TemeState propagate_to(const util::Epoch& when) const {
    return propagate(when.minutes_since(epoch_));
  }

  const util::Epoch& epoch() const { return epoch_; }
  int satnum() const { return satnum_; }
  /// Un-Kozai'd (Brouwer) mean motion [rad/min] recovered during init.
  double mean_motion_rad_per_min() const { return p_.no_unkozai; }
  /// Orbital period from the recovered mean motion [minutes].
  double period_minutes() const;
  /// The derived constants (for Sgp4Batch construction).
  const Sgp4Params& params() const { return p_; }

 private:
  util::Epoch epoch_;
  int satnum_ = 0;
  Sgp4Params p_;
};

}  // namespace dgs::orbit
