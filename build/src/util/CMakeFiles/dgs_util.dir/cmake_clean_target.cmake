file(REMOVE_RECURSE
  "libdgs_util.a"
)
