// E14 — extension: SLA / latency-critical tiers (paper §3.1 "Phi(x,t) can
// be defined by the satellite operators to prioritize data ... to honor
// SLAs"; §3.3 edge compute delivering "latency-sensitive data to the cloud
// faster").
//
// 5% of every satellite's imagery is tagged urgent (disaster monitoring).
// Sweep the urgency multiplier and report the two tiers' latency: the
// urgent tier should approach the per-pass floor while bulk pays a small
// penalty.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E14: priority-tier sweep (24 h, DGS 173, 5%% urgent) "
              "===\n\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  std::printf("  %9s | %25s | %25s\n", "", "urgent tier latency",
              "bulk tier latency");
  std::printf("  %9s | %11s %13s | %11s %13s\n", "priority", "median",
              "p99", "median", "p99");
  for (double priority : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    core::SimulationOptions opts = day_sim();
    opts.urgent_fraction = 0.05;
    opts.urgent_priority = priority;
    const core::SimulationResult r =
        core::Simulator(setup.sats, setup.dgs, &wx, opts).run();
    const auto& u = priority > 1.0 ? r.urgent_latency_minutes
                                   : r.latency_minutes;
    std::printf("  %9.0fx | %7.1f min %9.1f min | %7.1f min %9.1f min\n",
                priority, u.median(), u.percentile(99.0),
                r.bulk_latency_minutes.median(),
                r.bulk_latency_minutes.percentile(99.0));
  }
  std::printf("\n  expected shape: raising the multiplier pulls the urgent "
              "tier's tail toward the orbital access floor at a small cost "
              "to bulk latency.\n");
  return 0;
}
