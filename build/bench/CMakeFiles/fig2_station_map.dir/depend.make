# Empty dependencies file for fig2_station_map.
# This may be replaced when dependencies are built.
