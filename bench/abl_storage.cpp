// E17 — extension: on-board recorder sizing under the ack-free protocol
// (paper §3.3: "DGS does not necessarily reduce a satellite's storage
// requirement" because delivered data waits on-board for acks).
//
// Sweeps recorder capacity against the TX-capable fraction: a small
// recorder combined with rare ack opportunities loses data at the sensor
// even though the downlink itself keeps up.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E17: recorder capacity x TX fraction (24 h, 173 "
              "stations) ===\n\n");
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  std::printf("  %10s %8s %12s %12s %12s %11s\n", "recorder", "tx",
              "dropped", "delivered", "storage p99", "lat med");
  for (double capacity_gb : {25.0, 50.0, 100.0, 200.0, 0.0}) {
    for (double tx_fraction : {0.02, 0.10}) {
      groundseg::NetworkOptions opts;
      opts.tx_fraction = tx_fraction;
      auto sats = groundseg::generate_constellation(opts, kEpoch);
      for (auto& s : sats) s.storage_capacity_bytes = capacity_gb * 1e9;
      const auto stations = groundseg::generate_dgs_stations(opts);

      const core::SimulationResult r =
          core::Simulator(sats, stations, &wx, day_sim()).run();
      util::SampleSet storage_gb;
      for (const auto& o : r.per_satellite) {
        storage_gb.add(o.storage_high_water_bytes / 1e9);
      }
      char label[32];
      if (capacity_gb > 0.0) {
        std::snprintf(label, sizeof(label), "%.0f GB", capacity_gb);
      } else {
        std::snprintf(label, sizeof(label), "unlimited");
      }
      std::printf("  %10s %6.0f%% %9.2f TB %9.2f TB %9.1f GB %7.1f min\n",
                  label, tx_fraction * 100.0, r.total_dropped_bytes / 1e12,
                  r.total_delivered_bytes / 1e12,
                  storage_gb.percentile(99.0), r.latency_minutes.median());
    }
  }
  std::printf("\n  expected shape: drops appear when the recorder is "
              "smaller than (production x ack round-trip time); a thin TX "
              "subset therefore sets a floor on recorder size — the "
              "quantitative form of the paper's Sec. 3.3 storage remark.\n");
  return 0;
}
