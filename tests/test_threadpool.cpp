// ThreadPool contract tests: chunk-aligned task ordering, exception
// propagation, deterministic ordered reduction, and the nested-submit
// deadlock guard.
#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace {

using dgs::util::ParallelConfig;
using dgs::util::ThreadPool;

TEST(ThreadPool, SerialDefaultSpawnsNoWorkers) {
  ThreadPool pool(ParallelConfig{});
  EXPECT_EQ(pool.concurrency(), 1);
}

TEST(ThreadPool, HardwareConcurrencyResolution) {
  ThreadPool pool(ParallelConfig{.num_threads = 0, .chunk_size = 4});
  EXPECT_GE(pool.concurrency(), 1);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(ParallelConfig{.num_threads = threads, .chunk_size = 7});
    const std::int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, ChunksAreAlignedAndTileTheRange) {
  ThreadPool pool(ParallelConfig{.num_threads = 4, .chunk_size = 16});
  const std::int64_t n = 205;  // deliberately not a multiple of 16
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  pool.parallel_for(n, [&](std::int64_t b, std::int64_t e) {
    std::lock_guard<std::mutex> lk(mu);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  ASSERT_EQ(ranges.size(), 13u);  // ceil(205 / 16)
  std::int64_t expect_begin = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_EQ(b % 16, 0);
    EXPECT_EQ(e, std::min<std::int64_t>(n, b + 16));
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(ParallelConfig{.num_threads = 4, .chunk_size = 8});
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::int64_t b, std::int64_t) {
                          if (b == 504) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The pool stays usable after a failed region.
  std::atomic<std::int64_t> count{0};
  pool.parallel_for(100, [&](std::int64_t b, std::int64_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ExceptionOnSerialPathPropagates) {
  ThreadPool pool(ParallelConfig{});  // no workers
  EXPECT_THROW(pool.parallel_for(
                   10, [](std::int64_t, std::int64_t) {
                     throw std::invalid_argument("serial boom");
                   }),
               std::invalid_argument);
}

TEST(ThreadPool, ReduceOrderedIsBitIdenticalAcrossThreadCounts) {
  // A sum whose result depends on association order: catches any
  // implementation that reduces in completion order.
  const std::int64_t n = 10000;
  const auto term = [](std::int64_t i) {
    return std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (1.0 + i);
  };
  const auto run = [&](int threads) {
    ThreadPool pool(
        ParallelConfig{.num_threads = threads, .chunk_size = 32});
    return pool.reduce_ordered<double>(
        n, 0.0,
        [&](std::int64_t b, std::int64_t e) {
          double s = 0.0;
          for (std::int64_t i = b; i < e; ++i) s += term(i);
          return s;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  const double serial = run(1);
  for (int threads : {2, 4, 8}) {
    const double parallel = run(threads);
    EXPECT_EQ(serial, parallel) << threads << " threads";  // bitwise
  }
}

TEST(ThreadPool, ReduceOrderedPreservesChunkOrder) {
  ThreadPool pool(ParallelConfig{.num_threads = 4, .chunk_size = 10});
  const auto indices = pool.reduce_ordered<std::vector<std::int64_t>>(
      95, {},
      [](std::int64_t b, std::int64_t e) {
        std::vector<std::int64_t> v(static_cast<std::size_t>(e - b));
        std::iota(v.begin(), v.end(), b);
        return v;
      },
      [](std::vector<std::int64_t> acc, std::vector<std::int64_t> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });
  ASSERT_EQ(indices.size(), 95u);
  for (std::int64_t i = 0; i < 95; ++i) EXPECT_EQ(indices[i], i);
}

TEST(ThreadPool, MapFillsPerIndexOutputs) {
  ThreadPool pool(ParallelConfig{.num_threads = 3, .chunk_size = 5});
  const std::vector<int> out =
      pool.map<int>(100, [](std::int64_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(ParallelConfig{.num_threads = 4, .chunk_size = 1});
  std::atomic<std::int64_t> inner_total{0};
  // Each outer chunk issues another parallel_for on the same pool.  Workers
  // must execute the nested region inline; blocking would deadlock (all
  // workers waiting on a job only they could run).
  pool.parallel_for(8, [&](std::int64_t, std::int64_t) {
    pool.parallel_for(50, [&](std::int64_t b, std::int64_t e) {
      inner_total.fetch_add(e - b);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 50);
}

TEST(ThreadPool, ZeroAndNegativeSizesAreNoOps) {
  ThreadPool pool(ParallelConfig{.num_threads = 2, .chunk_size = 4});
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
  pool.parallel_for(-5, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
