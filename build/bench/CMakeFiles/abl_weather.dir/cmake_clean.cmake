file(REMOVE_RECURSE
  "CMakeFiles/abl_weather.dir/abl_weather.cpp.o"
  "CMakeFiles/abl_weather.dir/abl_weather.cpp.o.d"
  "abl_weather"
  "abl_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
