// dgs.checkpoint.v1: the snapshot/restore container for core::Session
// (DESIGN.md §16).
//
// Layout: a magic line naming the container format, a u64 little-endian
// header length, a single-line restricted-JSON header (schema table:
// checkpoint_header_specs in run_artifact.h), then the payload — the
// session's mutable state split into named sized sections
// (checkpoint_section_names), each framed as
//
//   u32 name_len | name bytes | u64 body_len | body bytes
//
// The header carries a CRC32 of the whole payload, so truncation and
// bit-flips are caught before any section is parsed.  All integers are
// little-endian; doubles are the IEEE-754 bit pattern via u64.  Writing
// raw double bits (not decimal text) is what makes restore byte-identical
// to an uninterrupted run: the restored state is the exact state that was
// saved, to the last mantissa bit.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/run_artifact.h"
#include "src/util/check.h"

namespace dgs::core {

inline constexpr std::string_view kCheckpointMagic = "dgs.checkpoint.v1\n";

/// Little-endian binary section writer.  Explicit byte pushes (not
/// memcpy-of-struct) keep the format independent of host padding; doubles
/// round-trip via std::bit_cast so no precision is lost.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { data_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      data_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      data_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    data_.append(s);
  }

  const std::string& data() const { return data_; }
  std::string take() { return std::move(data_); }

 private:
  std::string data_;
};

/// Bounds-checked reader over one section's bytes.  Out-of-bounds reads
/// throw (DGS_ENSURE) rather than abort: a truncated section inside a
/// checkpoint whose CRC passed is still caller-recoverable corruption.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[i_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[i_ + i]))
           << (8 * i);
    }
    i_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[i_ + i]))
           << (8 * i);
    }
    i_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(i_, n));
    i_ += n;
    return s;
  }

  bool done() const { return i_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - i_; }

 private:
  void need(std::size_t n) const {
    DGS_ENSURE(data_.size() - i_ >= n,
               "checkpoint section truncated: need " << n << " bytes, have "
                                                     << data_.size() - i_);
  }

  std::string_view data_;
  std::size_t i_ = 0;
};

/// Parsed header identity of a checkpoint (checkpoint_header_specs order;
/// `sections` is implied by checkpoint_section_names and not stored).
struct CheckpointHeader {
  int num_satellites = 0;
  int num_stations = 0;
  std::int64_t steps = 0;
  std::int64_t step_index = 0;
  double step_seconds = 0.0;
  double duration_hours = 0.0;
  bool finalized = false;
  std::uint32_t options_crc32 = 0;
  std::uint64_t payload_bytes = 0;   ///< Filled by write_checkpoint.
  std::uint32_t payload_crc32 = 0;   ///< Filled by write_checkpoint.
};

/// Renders the header as single-line restricted JSON in spec-table order
/// (schema_version + "checkpoint" tag first).
std::string render_checkpoint_header(const CheckpointHeader& header);

/// Writes a complete checkpoint: magic, header (payload size/CRC computed
/// here), and the sections in the given order.  The caller must pass
/// exactly checkpoint_section_names() names in order — enforced.
void write_checkpoint(
    std::ostream& out, CheckpointHeader header,
    std::span<const std::pair<std::string, std::string>> sections);

/// A validated view into a checkpoint buffer.  Section views alias the
/// buffer passed to read_checkpoint, which must outlive the view.
struct CheckpointView {
  CheckpointHeader header;
  std::vector<std::pair<std::string, std::string_view>> sections;

  std::string_view section(std::string_view name) const;
};

/// Parses and fully validates a checkpoint buffer: magic, header schema
/// (validate_checkpoint_header_json), payload size and CRC, and the exact
/// section sequence.  Returns the first violation, or nullopt with `out`
/// filled.
std::optional<ArtifactError> read_checkpoint(std::string_view data,
                                             CheckpointView* out);

/// Validation without keeping the view (CLI / test convenience).
std::optional<ArtifactError> validate_checkpoint(std::string_view data);

}  // namespace dgs::core
