// Quickstart: the DGS public API in one sitting.
//
//   1. Parse a real TLE and propagate it with SGP4.
//   2. Predict the passes over a ground station for the next day.
//   3. Evaluate the predictive link budget at the best pass and pick the
//      DVB-S2 MODCOD the satellite would be scheduled to transmit.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/dgs.h"

int main() {
  using namespace dgs;
  using util::deg2rad;
  using util::rad2deg;

  // 1. A real element set (ISS, the classic SGP4 reference TLE).
  const orbit::Tle tle = orbit::parse_tle(
      "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927",
      "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 "
      "15.72125391563537");
  const orbit::Sgp4 sat(tle);
  std::printf("Satellite %d: period %.1f min, perigee %.0f km\n",
              tle.satnum, sat.period_minutes(), tle.perigee_altitude_km());

  const orbit::TemeState now = sat.propagate(0.0);
  const orbit::Geodetic ssp =
      orbit::subsatellite_point(now.position_km, sat.epoch());
  std::printf("At epoch it flies over %.2f deg lat, %.2f deg lon at %.0f km "
              "altitude\n",
              rad2deg(ssp.latitude_rad), rad2deg(ssp.longitude_rad),
              ssp.altitude_km);

  // 2. Passes over a low-complexity DGS station (1 m dish in Seattle).
  groundseg::GroundStation station;
  station.name = "Seattle rooftop";
  station.location = {deg2rad(47.6), deg2rad(-122.3), 0.05};
  station.min_elevation_rad = deg2rad(10.0);
  station.refresh_ecef();

  orbit::PassPredictorOptions popts;
  popts.min_elevation_rad = station.min_elevation_rad;
  const auto passes = orbit::predict_passes(
      sat, station.location, sat.epoch(), sat.epoch().plus_days(1.0), popts);
  std::printf("\n%zu passes over %s in the next 24 h:\n", passes.size(),
              station.name.c_str());
  for (const auto& p : passes) {
    std::printf("  %s  for %5.1f min, max elevation %4.1f deg\n",
                p.aos.to_string().c_str(), p.duration_seconds() / 60.0,
                rad2deg(p.max_elevation_rad));
  }
  if (passes.empty()) return 0;

  // 3. Link budget at the best pass's culmination.
  const auto best = std::max_element(
      passes.begin(), passes.end(), [](const auto& a, const auto& b) {
        return a.max_elevation_rad < b.max_elevation_rad;
      });
  const orbit::TemeState st = sat.propagate_to(best->tca);
  util::Vec3 r_ecef, v_ecef;
  orbit::teme_to_ecef(st.position_km, st.velocity_km_s, best->tca, r_ecef,
                      v_ecef);
  const orbit::LookAngles look =
      orbit::look_angles(station.location, r_ecef, v_ecef);

  link::PathConditions path;
  path.range_km = look.range_km;
  path.elevation_rad = look.elevation_rad;
  path.site_latitude_rad = station.location.latitude_rad;
  path.rain_rate_mm_h = 2.0;  // light drizzle in the forecast
  path.cloud_liquid_kg_m2 = 0.5;

  const link::LinkBudget budget =
      link::evaluate_link(link::RadioSpec{}, station.receiver, path);
  std::printf("\nBest pass culmination: range %.0f km, elevation %.1f deg\n",
              look.range_km, rad2deg(look.elevation_rad));
  std::printf("  FSPL %.1f dB, rain %.2f dB, cloud %.2f dB, gas %.2f dB\n",
              budget.fspl_db, budget.rain_db, budget.cloud_db, budget.gas_db);
  std::printf("  C/N0 %.1f dBHz -> Es/N0 %.1f dB\n", budget.cn0_dbhz,
              budget.esn0_db);
  if (budget.closes()) {
    std::printf("  scheduled MODCOD: %s -> %.0f Mbps on one channel\n",
                budget.modcod->name.data(), budget.data_rate_bps / 1e6);
    std::printf("  a full %0.f-minute pass at this rate moves ~%.1f GB\n",
                best->duration_seconds() / 60.0,
                budget.data_rate_bps * best->duration_seconds() / 8.0 / 1e9);
  } else {
    std::printf("  link does not close at this elevation/weather\n");
  }
  return 0;
}
