// Capacitated (beamforming) matching: hospitals/residents-style stability,
// capacity enforcement, degeneration to the 1:1 case.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/matching.h"
#include "src/util/rng.h"

namespace dgs::core {
namespace {

std::vector<Edge> random_graph(util::Rng& rng, int sats, int stations,
                               double density) {
  std::vector<Edge> edges;
  for (int s = 0; s < sats; ++s) {
    for (int g = 0; g < stations; ++g) {
      if (rng.uniform() < density) {
        edges.push_back(Edge{s, g, rng.uniform(0.1, 100.0)});
      }
    }
  }
  return edges;
}

bool respects_capacities(const std::vector<Edge>& edges, const Matching& m,
                         int num_sats, const std::vector<int>& caps) {
  std::vector<int> sat_ct(num_sats, 0), gs_ct(caps.size(), 0);
  for (int i : m) {
    sat_ct[edges[i].sat] += 1;
    gs_ct[edges[i].station] += 1;
  }
  for (int c : sat_ct) {
    if (c > 1) return false;
  }
  for (std::size_t g = 0; g < caps.size(); ++g) {
    if (gs_ct[g] > caps[g]) return false;
  }
  return true;
}

TEST(BMatching, UnitCapacitiesMatchOneToOne) {
  util::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto edges = random_graph(rng, 10, 8, 0.4);
    const std::vector<int> caps(8, 1);
    const double w_b =
        matching_value(edges, stable_b_matching(edges, 10, caps));
    const double w_1 = matching_value(edges, stable_matching(edges, 10, 8));
    EXPECT_NEAR(w_b, w_1, 1e-9) << "trial " << trial;
  }
}

TEST(BMatching, CapacityIsEnforced) {
  util::Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const auto edges = random_graph(rng, 20, 5, 0.6);
    std::vector<int> caps{3, 1, 2, 0, 4};
    const Matching ms = stable_b_matching(edges, 20, caps);
    const Matching mg = greedy_b_matching(edges, 20, caps);
    EXPECT_TRUE(respects_capacities(edges, ms, 20, caps));
    EXPECT_TRUE(respects_capacities(edges, mg, 20, caps));
    // Zero-capacity station 3 must never appear.
    for (int i : ms) EXPECT_NE(edges[i].station, 3);
    for (int i : mg) EXPECT_NE(edges[i].station, 3);
  }
}

TEST(BMatching, StableOutputsAreStable) {
  util::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const int sats = static_cast<int>(rng.uniform_int(2, 25));
    const int stations = static_cast<int>(rng.uniform_int(1, 8));
    const auto edges = random_graph(rng, sats, stations, 0.5);
    std::vector<int> caps(stations);
    for (auto& c : caps) c = static_cast<int>(rng.uniform_int(0, 4));
    const Matching m = stable_b_matching(edges, sats, caps);
    EXPECT_TRUE(respects_capacities(edges, m, sats, caps));
    EXPECT_TRUE(is_stable_b_matching(edges, m, sats, caps))
        << "trial " << trial;
  }
}

TEST(BMatching, MoreBeamsServeMoreSatellites) {
  // 6 satellites all see one station.
  std::vector<Edge> edges;
  for (int s = 0; s < 6; ++s) edges.push_back(Edge{s, 0, 10.0 + s});
  EXPECT_EQ(stable_b_matching(edges, 6, {1}).size(), 1u);
  EXPECT_EQ(stable_b_matching(edges, 6, {3}).size(), 3u);
  EXPECT_EQ(stable_b_matching(edges, 6, {10}).size(), 6u);
  // The 3-beam station keeps the three heaviest edges.
  double total = matching_value(edges, stable_b_matching(edges, 6, {3}));
  EXPECT_NEAR(total, 15.0 + 14.0 + 13.0, 1e-12);
}

TEST(BMatching, DisplacedSatelliteFindsSecondChoice) {
  // s0 and s1 both prefer g0 (cap 1); s1 is better there; s0 must settle
  // for g1 even though it proposed to g0 first.
  const std::vector<Edge> edges{
      {0, 0, 5.0}, {1, 0, 9.0}, {0, 1, 2.0}};
  const Matching m = stable_b_matching(edges, 2, {1, 1});
  double total = matching_value(edges, m);
  EXPECT_NEAR(total, 11.0, 1e-12);
  EXPECT_EQ(m.size(), 2u);
}

TEST(BMatching, GreedyNeverBeatsItsOwnCapacityBound) {
  util::Rng rng(21);
  const auto edges = random_graph(rng, 30, 6, 0.7);
  const std::vector<int> caps{2, 2, 2, 2, 2, 2};
  const Matching m = greedy_b_matching(edges, 30, caps);
  EXPECT_LE(m.size(), 12u);
  EXPECT_TRUE(respects_capacities(edges, m, 30, caps));
}

TEST(BMatching, RejectsBadInputs) {
  const std::vector<Edge> edges{{0, 0, 1.0}};
  EXPECT_THROW(stable_b_matching(edges, 1, {-1}), std::invalid_argument);
  EXPECT_THROW(stable_b_matching(edges, 1, {}), std::invalid_argument);
  EXPECT_THROW(greedy_b_matching(edges, 1, {-2}), std::invalid_argument);
  EXPECT_THROW(is_stable_b_matching(edges, {}, 1, {-2}),
               std::invalid_argument);
}

TEST(BMatching, EmptyGraphEmptyMatching) {
  EXPECT_TRUE(stable_b_matching({}, 4, {2, 2}).empty());
  EXPECT_TRUE(greedy_b_matching({}, 4, {2, 2}).empty());
  EXPECT_TRUE(is_stable_b_matching({}, {}, 4, {2, 2}));
}

}  // namespace
}  // namespace dgs::core
