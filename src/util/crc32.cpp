#include "src/util/crc32.h"

#include <array>

namespace dgs::util {
namespace {

constexpr std::uint32_t kPolyReflected = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPolyReflected ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) {
    state = kTable[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace dgs::util
