# Empty compiler generated dependencies file for fig3c_value_function.
# This may be replaced when dependencies are built.
