// Frame transforms: geodetic <-> ECEF round trips, TEME -> ECEF rotation,
// topocentric look angles.
#include <gtest/gtest.h>

#include <cmath>

#include "src/orbit/frames.h"
#include "src/util/angles.h"
#include "src/util/constants.h"

namespace dgs::orbit {
namespace {

using util::deg2rad;
using util::rad2deg;
using util::Vec3;

TEST(GeodeticEcef, EquatorPrimeMeridian) {
  const Vec3 r = geodetic_to_ecef({0.0, 0.0, 0.0});
  EXPECT_NEAR(r.x, util::wgs84::kSemiMajorKm, 1e-9);
  EXPECT_NEAR(r.y, 0.0, 1e-9);
  EXPECT_NEAR(r.z, 0.0, 1e-9);
}

TEST(GeodeticEcef, NorthPole) {
  const Vec3 r = geodetic_to_ecef({deg2rad(90.0), 0.0, 0.0});
  EXPECT_NEAR(r.x, 0.0, 1e-6);
  EXPECT_NEAR(r.y, 0.0, 1e-6);
  // Polar radius b = a*(1-f) = 6356.752 km.
  EXPECT_NEAR(r.z, 6356.7523142, 1e-4);
}

class GeodeticRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(GeodeticRoundTrip, EcefInvertsGeodetic) {
  const auto [lat_deg, lon_deg, alt_km] = GetParam();
  const Geodetic g{deg2rad(lat_deg), deg2rad(lon_deg), alt_km};
  const Geodetic back = ecef_to_geodetic(geodetic_to_ecef(g));
  EXPECT_NEAR(rad2deg(back.latitude_rad), lat_deg, 1e-8);
  EXPECT_NEAR(util::wrap_pi(back.longitude_rad - g.longitude_rad), 0.0, 1e-10);
  EXPECT_NEAR(back.altitude_km, alt_km, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeodeticRoundTrip,
    ::testing::Values(std::make_tuple(0.0, 0.0, 0.0),
                      std::make_tuple(45.0, 90.0, 0.5),
                      std::make_tuple(-33.9, 18.4, 0.1),
                      std::make_tuple(78.2, 15.4, 0.45),
                      std::make_tuple(-72.0, 2.5, 1.3),
                      std::make_tuple(89.5, -135.0, 0.0),
                      std::make_tuple(-89.5, 45.0, 2.0),
                      std::make_tuple(51.5, -0.1, 0.03),
                      std::make_tuple(10.0, 179.9, 0.0),
                      std::make_tuple(-10.0, -179.9, 400.0)));

TEST(TemeEcef, RotationPreservesNormAndZ) {
  const Vec3 teme{4000.0, 5000.0, 1000.0};
  const util::Epoch when(util::DateTime{2020, 11, 4, 6, 0, 0.0});
  const Vec3 ecef = teme_to_ecef(teme, when);
  EXPECT_NEAR(ecef.norm(), teme.norm(), 1e-9);
  EXPECT_DOUBLE_EQ(ecef.z, teme.z);
}

TEST(TemeEcef, VelocityTransportTerm) {
  // A satellite stationary in TEME appears to move westward in ECEF at
  // omega x r.
  const Vec3 r_teme{7000.0, 0.0, 0.0};
  const Vec3 v_teme{0.0, 0.0, 0.0};
  const util::Epoch when(util::DateTime{2020, 1, 1, 0, 0, 0.0});
  Vec3 r_ecef, v_ecef;
  teme_to_ecef(r_teme, v_teme, when, r_ecef, v_ecef);
  EXPECT_NEAR(v_ecef.norm(), util::kEarthRotationRadPerSec * 7000.0, 1e-9);
}

TEST(LookAngles, ZenithTarget) {
  const Geodetic site{deg2rad(52.0), deg2rad(13.0), 0.0};
  const Vec3 site_ecef = geodetic_to_ecef(site);
  // Place the target 500 km along the geodetic normal.
  const double clat = std::cos(site.latitude_rad);
  const Vec3 up{clat * std::cos(site.longitude_rad),
                clat * std::sin(site.longitude_rad),
                std::sin(site.latitude_rad)};
  const Vec3 target = site_ecef + up * 500.0;
  const LookAngles la = look_angles(site, target);
  EXPECT_NEAR(rad2deg(la.elevation_rad), 90.0, 1e-6);
  EXPECT_NEAR(la.range_km, 500.0, 1e-9);
}

TEST(LookAngles, CardinalAzimuths) {
  const Geodetic site{0.0, 0.0, 0.0};  // equator, prime meridian
  const Vec3 site_ecef = geodetic_to_ecef(site);
  // North = +z from the equator.
  LookAngles la = look_angles(site, site_ecef + Vec3{0.0, 0.0, 100.0});
  EXPECT_NEAR(rad2deg(la.azimuth_rad), 0.0, 1e-6);
  // East = +y.
  la = look_angles(site, site_ecef + Vec3{0.0, 100.0, 0.0});
  EXPECT_NEAR(rad2deg(la.azimuth_rad), 90.0, 1e-6);
  // South = -z.
  la = look_angles(site, site_ecef + Vec3{0.0, 0.0, -100.0});
  EXPECT_NEAR(rad2deg(la.azimuth_rad), 180.0, 1e-6);
  // West = -y.
  la = look_angles(site, site_ecef + Vec3{0.0, -100.0, 0.0});
  EXPECT_NEAR(rad2deg(la.azimuth_rad), 270.0, 1e-6);
}

TEST(LookAngles, HorizonTargetHasZeroElevation) {
  const Geodetic site{0.0, 0.0, 0.0};
  const Vec3 site_ecef = geodetic_to_ecef(site);
  const LookAngles la = look_angles(site, site_ecef + Vec3{0.0, 0.0, 1.0});
  EXPECT_NEAR(rad2deg(la.elevation_rad), 0.0, 1e-6);
}

TEST(LookAngles, RangeRateSign) {
  const Geodetic site{0.0, 0.0, 0.0};
  const Vec3 site_ecef = geodetic_to_ecef(site);
  const Vec3 target = site_ecef + Vec3{500.0, 0.0, 500.0};
  // Moving away along the line of sight: positive range rate.
  const Vec3 away = (target - site_ecef).normalized() * 7.0;
  EXPECT_GT(look_angles(site, target, away).range_rate_km_s, 0.0);
  EXPECT_LT(look_angles(site, target, -away).range_rate_km_s, 0.0);
}

TEST(SubsatellitePoint, LiesBelowTheSatellite) {
  // A satellite directly over (0, gmst) in TEME maps to latitude ~0.
  const util::Epoch when(util::DateTime{2020, 6, 1, 0, 0, 0.0});
  const Vec3 r_teme{7000.0, 0.0, 0.0};
  const Geodetic g = subsatellite_point(r_teme, when);
  EXPECT_NEAR(g.latitude_rad, 0.0, 1e-9);
  EXPECT_NEAR(g.altitude_km, 7000.0 - util::wgs84::kSemiMajorKm, 0.5);
}

}  // namespace
}  // namespace dgs::orbit
