#include "src/core/geometry_cache.h"

#include <cmath>

#include "src/util/check.h"

namespace dgs::core {

GeometryCache::GeometryCache(const util::Epoch& base, double step_seconds,
                             int capacity_steps, obs::Registry* metrics,
                             std::size_t max_bytes)
    : base_(base), step_seconds_(step_seconds),
      capacity_(static_cast<std::size_t>(capacity_steps)),
      max_bytes_(max_bytes) {
  DGS_ENSURE_GT(step_seconds, 0.0);
  DGS_ENSURE_GT(capacity_steps, 0);
  DGS_ENSURE_GT(max_bytes, std::size_t{0});
  if (metrics != nullptr) {
    hits_ = metrics->counter("dgs_geometry_cache_hits_total",
                             "Step-geometry cache lookups served from the "
                             "cache");
    misses_ = metrics->counter("dgs_geometry_cache_misses_total",
                               "Step-geometry cache lookups that had to "
                               "propagate");
  } else {
    own_hits_ = std::make_unique<obs::Counter>();
    own_misses_ = std::make_unique<obs::Counter>();
    hits_ = own_hits_.get();
    misses_ = own_misses_.get();
  }
}

std::optional<std::int64_t> GeometryCache::step_key(
    const util::Epoch& when) const {
  const double steps = when.seconds_since(base_) / step_seconds_;
  const double rounded = std::round(steps);
  // Epoch arithmetic is exact to well under a millisecond over day-scale
  // horizons; anything further off the grid is a genuinely off-grid query.
  if (std::abs(steps - rounded) * step_seconds_ > 1e-4) return std::nullopt;
  return static_cast<std::int64_t>(rounded);
}

const StepGeometry* GeometryCache::find(std::int64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_->inc();
    return nullptr;
  }
  hits_->inc();
  return &it->second;
}

namespace {

std::size_t entry_bytes(const StepGeometry& g) {
  std::size_t bytes = sizeof(StepGeometry);
  bytes += g.sat_ecef.size() * sizeof(util::Vec3);
  bytes += g.per_station.size() * sizeof(std::vector<VisibleSat>);
  for (const std::vector<VisibleSat>& v : g.per_station) {
    bytes += v.size() * sizeof(VisibleSat);
  }
  return bytes;
}

}  // namespace

std::size_t GeometryCache::approx_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [key, entry] : entries_) bytes += entry_bytes(entry);
  return bytes;
}

StepGeometry& GeometryCache::emplace(std::int64_t key) {
  while (entries_.size() >= capacity_) entries_.erase(entries_.begin());
  while (!entries_.empty() && approx_bytes() > max_bytes_) {
    entries_.erase(entries_.begin());
  }
  return entries_[key];
}

}  // namespace dgs::core
