// Run-artifact schema module: restricted JSON reader, summary /
// timeseries / events validators, and the campaign manifest / aggregate
// validators.  The positive paths are covered end to end by
// test_report.cpp and test_campaign.cpp; this file pins the *negative*
// space — every way an artifact can drift must be named precisely.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/core/report.h"
#include "src/core/run_artifact.h"

namespace dgs::core {
namespace {

std::string error_where(const std::optional<ArtifactError>& e) {
  return e ? e->where : std::string("(valid)");
}

/// Replaces the first occurrence of `from` (which must exist) with `to`.
std::string replaced(std::string text, const std::string& from,
                     const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

std::string empty_summary() {
  std::stringstream ss;
  write_summary_json(ss, SimulationResult{});
  return ss.str();
}

// --- Restricted JSON reader ------------------------------------------------

TEST(RestrictedJson, ParsesTheSubsetAndPreservesOrder) {
  const auto doc = parse_restricted_json(
      "{\"b\": 1.5, \"a\": \"x\\\"y\\\\z\", \"flag\": true, "
      "\"none\": null, \"inner\": {\"n\": -2e3}}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->kind, JsonValue::Kind::kObject);
  ASSERT_EQ(doc->members.size(), 5u);
  // Document order is part of the contract, not key order.
  EXPECT_EQ(doc->members[0].first, "b");
  EXPECT_EQ(doc->members[1].first, "a");
  EXPECT_EQ(doc->members[0].second.number, 1.5);
  EXPECT_EQ(doc->members[1].second.text, "x\"y\\z");
  EXPECT_TRUE(doc->members[2].second.boolean);
  EXPECT_EQ(doc->members[3].second.kind, JsonValue::Kind::kNull);
  const JsonValue* inner = doc->find("inner");
  ASSERT_NE(inner, nullptr);
  ASSERT_EQ(inner->kind, JsonValue::Kind::kObject);
  EXPECT_EQ(inner->find("n")->number, -2000.0);
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(RestrictedJson, RejectsWhatTheSubsetExcludes) {
  ArtifactError e;
  // Arrays are deliberately outside the subset.
  EXPECT_FALSE(parse_restricted_json("{\"a\": [1, 2]}", &e).has_value());
  EXPECT_FALSE(e.message.empty());
  // Escapes other than \" and \\ .
  EXPECT_FALSE(parse_restricted_json("{\"a\": \"\\n\"}").has_value());
  EXPECT_FALSE(parse_restricted_json("{\"a\": \"\\u0041\"}").has_value());
  // Malformed documents.
  EXPECT_FALSE(parse_restricted_json("", &e).has_value());
  EXPECT_FALSE(parse_restricted_json("{\"a\": }").has_value());
  EXPECT_FALSE(parse_restricted_json("{\"a\": 1,}").has_value());
  EXPECT_FALSE(parse_restricted_json("{\"a\": \"unterminated").has_value());
  EXPECT_FALSE(parse_restricted_json("{} {}", &e).has_value());
  EXPECT_NE(e.message.find("trailing"), std::string::npos);
  // Depth cap: 9 nested objects exceed the max depth of 8.
  std::string deep;
  for (int i = 0; i < 9; ++i) deep += "{\"k\": ";
  deep += "1";
  for (int i = 0; i < 9; ++i) deep += "}";
  EXPECT_FALSE(parse_restricted_json(deep).has_value());
}

// --- Summary validator -----------------------------------------------------

TEST(SummaryValidator, AcceptsTheWriterOutput) {
  EXPECT_FALSE(validate_summary_json(empty_summary()).has_value());
}

TEST(SummaryValidator, RejectsWrongSchemaVersion) {
  const auto e = validate_summary_json(replaced(
      empty_summary(), "\"schema_version\": 2", "\"schema_version\": 1"));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->where, "summary.schema_version");
}

TEST(SummaryValidator, RejectsMissingAndExtraKeys) {
  const auto missing = validate_summary_json(replaced(
      empty_summary(), "  \"ack_retries\": 0,\n", ""));
  ASSERT_TRUE(missing.has_value());
  EXPECT_NE(missing->message.find("keys"), std::string::npos);
  const auto extra = validate_summary_json(replaced(
      empty_summary(), "\"steps\": 0", "\"steps\": 0,\n  \"extra\": 1"));
  EXPECT_TRUE(extra.has_value());
}

TEST(SummaryValidator, RejectsReorderedKeys) {
  // Swaps the adjacent generated/delivered keys via a placeholder (a
  // naive double replace would round-trip back to the original).
  std::string text =
      replaced(empty_summary(), "\"total_generated_tb\"", "\"TMP\"");
  text = replaced(text, "\"total_delivered_tb\"", "\"total_generated_tb\"");
  text = replaced(text, "\"TMP\"", "\"total_delivered_tb\"");
  const auto e = validate_summary_json(text);
  ASSERT_TRUE(e.has_value()) << text;
  EXPECT_NE(e->message.find("at this position"), std::string::npos);
}

TEST(SummaryValidator, RejectsWrongFieldKinds) {
  // Integer field holding a fraction.
  const auto non_integer = validate_summary_json(
      replaced(empty_summary(), "\"steps\": 0", "\"steps\": 0.5"));
  ASSERT_TRUE(non_integer.has_value());
  EXPECT_EQ(non_integer->where, "summary.steps");
  // Stats field holding a partial percentile object.
  const auto partial = validate_summary_json(
      replaced(empty_summary(), "\"latency_minutes\": null",
               "\"latency_minutes\": {\"median\": 1.0}"));
  ASSERT_TRUE(partial.has_value());
  EXPECT_NE(error_where(partial).find("latency_minutes"),
            std::string::npos);
  // A populated stats object must carry count >= 1 (empty sets are null).
  const auto zero_count = validate_summary_json(replaced(
      empty_summary(), "\"latency_minutes\": null",
      "\"latency_minutes\": {\"median\": 0.000, \"p90\": 0.000, "
      "\"p99\": 0.000, \"mean\": 0.000, \"count\": 0}"));
  ASSERT_TRUE(zero_count.has_value());
  EXPECT_EQ(zero_count->where, "summary.latency_minutes.count");
}

// --- Timeseries validator --------------------------------------------------

TEST(TimeseriesValidator, AcceptsWellFormedRows) {
  const std::string text = std::string(timeseries_csv_header()) +
                           "\n0.0167,0.000001,0.250,3,0\n"
                           "0.0333,0.000002,0.260,2,1\n";
  EXPECT_FALSE(validate_timeseries_csv(text).has_value());
  // Header-only (no steps recorded) is valid.
  EXPECT_FALSE(
      validate_timeseries_csv(std::string(timeseries_csv_header()) + "\n")
          .has_value());
}

TEST(TimeseriesValidator, RejectsShapeViolations) {
  const std::string header(timeseries_csv_header());
  EXPECT_TRUE(validate_timeseries_csv("").has_value());
  EXPECT_TRUE(validate_timeseries_csv("hours,other\n1,2\n").has_value());
  // Wrong column count, non-numeric cell, non-increasing hours.
  EXPECT_TRUE(
      validate_timeseries_csv(header + "\n0.1,0.2,0.3,4\n").has_value());
  EXPECT_TRUE(validate_timeseries_csv(header + "\n0.1,abc,0.3,4,5\n")
                  .has_value());
  const auto stalled = validate_timeseries_csv(
      header + "\n0.2,0,0,0,0\n0.2,0,0,0,0\n");
  ASSERT_TRUE(stalled.has_value());
  EXPECT_NE(stalled->message.find("strictly increasing"),
            std::string::npos);
}

// --- Events validator ------------------------------------------------------

TEST(EventsValidator, AcceptsTheEmittedShape) {
  EXPECT_FALSE(
      validate_events_jsonl(
          "{\"t_hours\": 0.0167, \"step\": 1, \"type\": \"contact_open\", "
          "\"sat\": 0, \"station\": 3}\n"
          "\n"
          "{\"t_hours\": 0.0333, \"step\": 2, \"type\": \"bytes_moved\", "
          "\"bytes\": 1.5e9, \"received\": true}\n")
          .has_value());
  // An empty log (no sinks fired) is valid.
  EXPECT_FALSE(validate_events_jsonl("").has_value());
}

TEST(EventsValidator, RejectsMalformedLines) {
  // Prefix must open with t_hours, step (integer >= 0), type.
  EXPECT_TRUE(validate_events_jsonl(
                  "{\"step\": 1, \"t_hours\": 0.1, \"type\": \"x\"}\n")
                  .has_value());
  EXPECT_TRUE(validate_events_jsonl(
                  "{\"t_hours\": 0.1, \"step\": -1, \"type\": \"x\"}\n")
                  .has_value());
  EXPECT_TRUE(validate_events_jsonl(
                  "{\"t_hours\": 0.1, \"step\": 1.5, \"type\": \"x\"}\n")
                  .has_value());
  EXPECT_TRUE(validate_events_jsonl(
                  "{\"t_hours\": 0.1, \"step\": 1, \"type\": \"\"}\n")
                  .has_value());
  // Payloads are flat.
  const auto nested = validate_events_jsonl(
      "{\"t_hours\": 0.1, \"step\": 1, \"type\": \"x\", "
      "\"payload\": {\"a\": 1}}\n");
  ASSERT_TRUE(nested.has_value());
  EXPECT_NE(nested->message.find("flat"), std::string::npos);
  // Line numbers locate the bad row.
  const auto second = validate_events_jsonl(
      "{\"t_hours\": 0.1, \"step\": 1, \"type\": \"x\"}\n"
      "not json\n");
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->where.find("line 2"), std::string::npos);
}

// --- Campaign manifest / aggregate validators ------------------------------

std::string valid_manifest() {
  return "{\n"
         "  \"schema_version\": 2,\n"
         "  \"artifact\": \"campaign_manifest\",\n"
         "  \"profile\": \"storm\",\n"
         "  \"campaign_seed\": 1,\n"
         "  \"samples\": 6,\n"
         "  \"duration_hours\": 2.000000,\n"
         "  \"step_seconds\": 60.000000,\n"
         "  \"num_satellites\": 4,\n"
         "  \"num_stations\": 10,\n"
         "  \"network_seed\": 13,\n"
         "  \"weather_seed\": 42\n"
         "}\n";
}

std::string valid_aggregate() {
  return replaced(
      replaced(valid_manifest(), "\"campaign_manifest\"",
               "\"campaign_aggregate\""),
      "  \"weather_seed\": 42\n",
      "  \"weather_seed\": 42,\n"
      "  \"metrics\": {\"backlog_mean_gb\": {\"mean\": 1.0, \"sd\": 0.1, "
      "\"ci95\": 0.05, \"p50\": 1.0, \"p99\": 1.2, \"min\": 0.8, "
      "\"max\": 1.3, \"count\": 6}}\n");
}

TEST(CampaignValidators, AcceptWellFormedDocuments) {
  const auto m = validate_campaign_manifest_json(valid_manifest());
  EXPECT_FALSE(m.has_value()) << error_where(m);
  const auto a = validate_campaign_aggregate_json(valid_aggregate());
  EXPECT_FALSE(a.has_value()) << error_where(a);
}

TEST(CampaignValidators, RejectHeaderViolations) {
  // Wrong artifact tag for the validator invoked.
  EXPECT_TRUE(
      validate_campaign_aggregate_json(valid_manifest()).has_value());
  EXPECT_TRUE(
      validate_campaign_manifest_json(valid_aggregate()).has_value());
  // schema_version must be first, and current.
  const auto stale = validate_campaign_manifest_json(replaced(
      valid_manifest(), "\"schema_version\": 2", "\"schema_version\": 0"));
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->where, "manifest.schema_version");
}

TEST(CampaignValidators, RejectIdentityAndMetricViolations) {
  // Identity fields are ordered and typed.
  EXPECT_TRUE(validate_campaign_manifest_json(
                  replaced(valid_manifest(), "\"profile\": \"storm\"",
                           "\"profile\": \"\""))
                  .has_value());
  EXPECT_TRUE(validate_campaign_manifest_json(
                  replaced(valid_manifest(), "  \"samples\": 6,\n", ""))
                  .has_value());
  EXPECT_TRUE(validate_campaign_manifest_json(
                  replaced(valid_manifest(), "\"weather_seed\": 42",
                           "\"weather_seed\": 42,\n  \"stray\": 1"))
                  .has_value());
  // Metric objects carry exactly the 8 aggregate members.
  const auto short_metric = validate_campaign_aggregate_json(
      replaced(valid_aggregate(), ", \"count\": 6", ""));
  ASSERT_TRUE(short_metric.has_value());
  EXPECT_NE(short_metric->where.find("backlog_mean_gb"),
            std::string::npos);
  EXPECT_TRUE(validate_campaign_aggregate_json(
                  replaced(valid_aggregate(), "\"count\": 6",
                           "\"count\": 0"))
                  .has_value());
  EXPECT_TRUE(validate_campaign_aggregate_json(
                  replaced(valid_aggregate(),
                           "\"metrics\": {\"backlog_mean_gb\"",
                           "\"metrics\": {}, \"x\": {\"backlog_mean_gb\""))
                  .has_value());
}

}  // namespace
}  // namespace dgs::core
