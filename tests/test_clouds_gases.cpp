// ITU-R P.840 cloud attenuation and the gaseous absorption surrogate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/link/clouds.h"
#include "src/link/gases.h"
#include "src/util/angles.h"

namespace dgs::link {
namespace {

using util::deg2rad;

TEST(WaterPermittivity, StaticLimitMatchesDebyeModel) {
  // At f -> 0 and 0 C (theta = 300/273.15), eps' -> eps0 = 77.66 +
  // 103.3*(theta-1).
  const double theta = 300.0 / 273.15;
  const double eps0 = 77.66 + 103.3 * (theta - 1.0);
  const WaterPermittivity e = water_permittivity(0.001, 273.15);
  EXPECT_NEAR(e.real, eps0, 0.5);
  EXPECT_NEAR(e.imag, 0.0, 0.05);
}

TEST(WaterPermittivity, ImaginaryPartPositiveInBand) {
  for (double f : {1.0, 10.0, 30.0, 100.0}) {
    const WaterPermittivity e = water_permittivity(f, 273.15);
    EXPECT_GT(e.imag, 0.0);
    EXPECT_GT(e.real, 3.0);  // above the optical limit eps2 = 3.52 roughly
  }
}

TEST(CloudCoefficient, TypicalXBandValue) {
  // P.840 K_l at 10 GHz, 0 C is ~0.1 (dB/km)/(g/m^3).
  EXPECT_NEAR(cloud_specific_attenuation_coeff(10.0, 273.15), 0.1, 0.03);
}

TEST(CloudCoefficient, IncreasesWithFrequency) {
  double prev = 0.0;
  for (double f : {2.0, 8.0, 15.0, 30.0, 60.0, 100.0}) {
    const double k = cloud_specific_attenuation_coeff(f);
    EXPECT_GT(k, prev) << "f=" << f;
    prev = k;
  }
}

TEST(CloudCoefficient, RejectsOutOfBand) {
  EXPECT_THROW(cloud_specific_attenuation_coeff(0.0), std::invalid_argument);
  EXPECT_THROW(cloud_specific_attenuation_coeff(250.0), std::invalid_argument);
}

TEST(CloudAttenuation, ScalesLinearlyWithColumnarWater) {
  const double a1 = cloud_attenuation_db(8.2, 1.0, deg2rad(30.0));
  const double a2 = cloud_attenuation_db(8.2, 2.0, deg2rad(30.0));
  EXPECT_NEAR(a2, 2.0 * a1, 1e-12);
}

TEST(CloudAttenuation, CosecantElevationScaling) {
  const double zen = cloud_attenuation_db(8.2, 1.0, deg2rad(90.0));
  const double a30 = cloud_attenuation_db(8.2, 1.0, deg2rad(30.0));
  EXPECT_NEAR(a30, zen / std::sin(deg2rad(30.0)), 1e-9);
}

TEST(CloudAttenuation, GrazingClampedAtFiveDegrees) {
  EXPECT_DOUBLE_EQ(cloud_attenuation_db(8.2, 1.0, deg2rad(2.0)),
                   cloud_attenuation_db(8.2, 1.0, deg2rad(5.0)));
}

TEST(CloudAttenuation, ZeroWaterZeroLoss) {
  EXPECT_DOUBLE_EQ(cloud_attenuation_db(8.2, 0.0, deg2rad(30.0)), 0.0);
}

TEST(CloudAttenuation, RejectsBadInputs) {
  EXPECT_THROW(cloud_attenuation_db(8.2, -1.0, deg2rad(30.0)),
               std::invalid_argument);
  EXPECT_THROW(cloud_attenuation_db(8.2, 1.0, 0.0), std::invalid_argument);
}

TEST(Gases, ZenithValuesAreSmallOffLines) {
  // X-band clear-air zenith absorption is a few hundredths of a dB.
  EXPECT_GT(gaseous_zenith_attenuation_db(8.2), 0.0);
  EXPECT_LT(gaseous_zenith_attenuation_db(8.2), 0.2);
}

TEST(Gases, WaterVapourLinePeaksNear22GHz) {
  EXPECT_GT(gaseous_zenith_attenuation_db(22.2),
            gaseous_zenith_attenuation_db(16.0));
  EXPECT_GT(gaseous_zenith_attenuation_db(22.2),
            gaseous_zenith_attenuation_db(30.0));
}

TEST(Gases, SlantScalingAndClamp) {
  const double zen = gaseous_attenuation_db(8.2, deg2rad(90.0));
  EXPECT_NEAR(gaseous_attenuation_db(8.2, deg2rad(30.0)),
              zen / std::sin(deg2rad(30.0)), 1e-9);
  EXPECT_DOUBLE_EQ(gaseous_attenuation_db(8.2, deg2rad(1.0)),
                   gaseous_attenuation_db(8.2, deg2rad(5.0)));
}

TEST(Gases, RejectsBadInputs) {
  EXPECT_THROW(gaseous_zenith_attenuation_db(0.0), std::invalid_argument);
  EXPECT_THROW(gaseous_attenuation_db(8.2, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dgs::link
