// Shared command-line handling for the micro benches.
//
// Google Benchmark owns the `--benchmark_*` namespace; DGS-specific knobs
// are consumed here *before* benchmark::Initialize sees (and rejects)
// them.  Currently: `--threads=N` / `--threads N` selects the ThreadPool
// lane count the benchmarked pipeline runs with (1 = serial, the default;
// 0 = hardware concurrency), so speedup curves are measurable by sweeping
// the flag.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace dgs::bench {

/// Extracts `--threads` from argv (compacting it away so Benchmark's own
/// parser never sees it) and returns the requested lane count, or
/// `default_threads` when absent.
inline int consume_threads_flag(int* argc, char** argv,
                                int default_threads = 1) {
  int threads = default_threads;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc) {
      threads = std::atoi(argv[i + 1]);
      ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return threads;
}

/// Extracts a `--name=VALUE` / `--name VALUE` string flag (before
/// Benchmark's parser rejects it).  `flag` includes the leading dashes.
/// Returns the value, or "" when absent.
inline std::string consume_string_flag(int* argc, char** argv,
                                       const char* flag) {
  const std::size_t len = std::strlen(flag);
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      value = argv[i] + len + 1;
      continue;
    }
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < *argc) {
      value = argv[i + 1];
      ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return value;
}

/// Integer variant of consume_string_flag; `fallback` when absent.
inline int consume_int_flag(int* argc, char** argv, const char* flag,
                            int fallback) {
  const std::string v = consume_string_flag(argc, argv, flag);
  return v.empty() ? fallback : std::atoi(v.c_str());
}

/// Extracts `--trace-out=FILE` / `--trace-out FILE` (again before
/// Benchmark's parser rejects it).  Returns the path, or "" when absent;
/// the caller enables span tracing and writes the Chrome-trace JSON there
/// after the run.
inline std::string consume_trace_out_flag(int* argc, char** argv) {
  return consume_string_flag(argc, argv, "--trace-out");
}

}  // namespace dgs::bench
