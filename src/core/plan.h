// Downlink plan and collated-ack wire format (paper §1, §3).
//
// "The uplink-capable ground stations communicate with the satellites and
// upload a plan for the data-dump as the satellite orbits the Earth.  The
// satellite then dumps the data at the locations pre-specified by the
// uploaded plan."  This module defines that artifact: a compact binary
// encoding of the per-satellite schedule, and of the collated ack report,
// sized to fit the hundreds-of-kbps TT&C uplink in a single contact.
//
// Wire layout (little-endian):
//   PlanMessage:  magic 'DGSP' | u8 version | u32 sat_id | f64 epoch_jd |
//                 u16 entry_count | entries... | u32 crc32
//   PlanEntry:    u32 start_offset_s | u16 duration_s | u16 station_id |
//                 u8 modcod_index | u8 channels          (10 bytes)
//   AckMessage:   magic 'DGSA' | u8 version | u32 sat_id | f64 epoch_jd |
//                 u16 range_count | ranges... | u32 crc32
//   AckRange:     u64 first_byte | u64 last_byte          (16 bytes)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/time.h"

namespace dgs::core {

/// One scheduled downlink slot in a satellite's uploaded plan.
struct PlanEntry {
  std::uint32_t start_offset_s = 0;  ///< Seconds after the plan epoch.
  std::uint16_t duration_s = 0;
  std::uint16_t station_id = 0;
  std::uint8_t modcod_index = 0;     ///< Index into the DVB-S2 table.
  std::uint8_t channels = 1;
};

struct DownlinkPlan {
  std::uint32_t sat_id = 0;
  util::Epoch epoch;                 ///< Plan reference time.
  std::vector<PlanEntry> entries;    ///< Chronological.
};

/// A contiguous range of acknowledged payload bytes [first, last].
struct AckRange {
  std::uint64_t first_byte = 0;
  std::uint64_t last_byte = 0;
};

struct AckReport {
  std::uint32_t sat_id = 0;
  util::Epoch collated_at;
  std::vector<AckRange> ranges;
};

/// Serializes to the CRC-protected wire format.  Throws
/// std::invalid_argument if the plan exceeds the u16 entry count.
std::vector<std::uint8_t> serialize(const DownlinkPlan& plan);
std::vector<std::uint8_t> serialize(const AckReport& report);

/// Parses and validates (magic, version, CRC).  Throws
/// std::invalid_argument on any corruption or truncation.
DownlinkPlan parse_plan(std::span<const std::uint8_t> bytes);
AckReport parse_ack_report(std::span<const std::uint8_t> bytes);

/// Wire size without building the buffer.
std::size_t plan_wire_size(std::size_t entry_count);
std::size_t ack_wire_size(std::size_t range_count);

/// Seconds needed to push `bytes` through an uplink at `rate_bps`,
/// including a fixed handshake overhead (carrier + command session setup).
double upload_duration_s(std::size_t bytes, double rate_bps,
                         double handshake_s = 2.0);

}  // namespace dgs::core
