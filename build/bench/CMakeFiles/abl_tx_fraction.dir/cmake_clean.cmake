file(REMOVE_RECURSE
  "CMakeFiles/abl_tx_fraction.dir/abl_tx_fraction.cpp.o"
  "CMakeFiles/abl_tx_fraction.dir/abl_tx_fraction.cpp.o.d"
  "abl_tx_fraction"
  "abl_tx_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tx_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
