# Empty dependencies file for dgs_util.
# This may be replaced when dependencies are built.
