// E9 — ablation: stable (Gale-Shapley) vs optimal (Hungarian) vs greedy
// matching (paper §3.1 discusses the stable/optimal trade-off and picks
// stable; greedy is the cheap strawman).
//
// Reports end-to-end metrics under each matcher plus the per-instant
// stability of the produced matchings (the optimal matching sacrifices
// stability: individual satellite-station pairs could defect).
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E9: matching-algorithm ablation (24 h, DGS 173) ===\n\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  struct Row {
    const char* label;
    core::MatcherKind kind;
  };
  const Row rows[] = {
      {"stable (Gale-Shapley)", core::MatcherKind::kStable},
      {"optimal (Hungarian)", core::MatcherKind::kOptimal},
      {"greedy", core::MatcherKind::kGreedy},
  };

  std::printf("  %-22s %10s %9s %9s %11s %13s\n", "matcher", "lat med",
              "lat p90", "backlog", "delivered", "matched value");
  for (const Row& row : rows) {
    core::SimulationOptions opts = day_sim();
    opts.matcher = row.kind;
    const core::SimulationResult r =
        core::Simulator(setup.sats, setup.dgs, &wx, opts).run();
    std::printf("  %-22s %7.1f min %5.1f min %6.2f GB %8.1f TB %13.0f\n",
                row.label, r.latency_minutes.median(),
                r.latency_minutes.percentile(90.0), r.backlog_gb.median(),
                r.total_delivered_bytes / 1e12, r.total_matched_value);
  }

  // Stability audit: sample instants, compare the three matchings directly.
  std::printf("\nPer-instant audit (every 30 min):\n");
  core::VisibilityEngine engine(setup.sats, setup.dgs, &wx);
  std::vector<core::OnboardQueue> queues(setup.sats.size());
  for (auto& q : queues) q.generate(50e9, kEpoch.plus_seconds(-3600));

  int instants = 0, optimal_unstable = 0;
  double stable_value = 0.0, optimal_value = 0.0, greedy_value = 0.0;
  for (double m = 0.0; m < 24.0 * 60.0; m += 30.0) {
    const util::Epoch t = kEpoch.plus_seconds(m * 60.0);
    auto contacts = engine.contacts(t);
    if (contacts.empty()) continue;
    core::LatencyValue phi;
    std::vector<core::Edge> edges;
    for (auto& c : contacts) {
      c.weight = phi.edge_value(queues[c.sat], t, c.predicted_rate_bps * 7.5);
      edges.push_back(core::Edge{c.sat, c.station, c.weight});
    }
    const int ns = engine.num_sats(), ng = engine.num_stations();
    const auto ms = core::stable_matching(edges, ns, ng);
    const auto mo = core::optimal_matching(edges, ns, ng);
    const auto mg = core::greedy_matching(edges, ns, ng);
    stable_value += core::matching_value(edges, ms);
    optimal_value += core::matching_value(edges, mo);
    greedy_value += core::matching_value(edges, mg);
    if (!core::is_stable(edges, mo, ns, ng)) ++optimal_unstable;
    ++instants;
  }
  std::printf("  instants sampled: %d\n", instants);
  std::printf("  value captured: stable %.3f, greedy %.3f (fraction of "
              "optimal)\n",
              stable_value / optimal_value, greedy_value / optimal_value);
  std::printf("  optimal matchings that are unstable (contain a blocking "
              "pair): %d/%d\n",
              optimal_unstable, instants);
  std::printf("\n  paper's position: stable matching trades a small amount "
              "of global value for defection-proofness in a fragmented "
              "network.\n");
  return 0;
}
