// Two-Line Element set (TLE) parsing, validation, and generation.
//
// A TLE is the NORAD-standard textual representation of a satellite's mean
// orbital elements (Hoots & Roehrich, Spacetrack Report #3).  DGS both
// consumes TLEs (the scheduler's orbit calculations start from them, §3.1 of
// the paper) and produces them (the synthetic constellation generator emits
// TLEs so the whole pipeline runs exactly as it would on live element sets).
#pragma once

#include <string>
#include <string_view>

#include "src/util/time.h"

namespace dgs::orbit {

/// Parsed orbital elements of one TLE.  Angles are stored in degrees exactly
/// as they appear in the element set; mean motion in revolutions per day.
struct Tle {
  int satnum = 0;                ///< NORAD catalog number.
  char classification = 'U';     ///< 'U' unclassified.
  std::string intl_designator;   ///< International designator (cols 10-17).
  util::Epoch epoch;             ///< Epoch of the element set (UTC).
  double ndot_over_2 = 0.0;      ///< First time derivative of mean motion
                                 ///< / 2 [rev/day^2].
  double nddot_over_6 = 0.0;     ///< Second derivative / 6 [rev/day^3].
  double bstar = 0.0;            ///< B* drag term [1/earth-radii].
  int element_set_number = 0;    ///< Element set number.
  double inclination_deg = 0.0;  ///< Orbital inclination [deg].
  double raan_deg = 0.0;         ///< Right ascension of ascending node [deg].
  double eccentricity = 0.0;     ///< Eccentricity (dimensionless).
  double arg_perigee_deg = 0.0;  ///< Argument of perigee [deg].
  double mean_anomaly_deg = 0.0; ///< Mean anomaly [deg].
  double mean_motion_revs_per_day = 0.0;  ///< Mean motion [rev/day].
  int rev_number = 0;            ///< Revolution number at epoch.

  std::string name;              ///< Optional satellite name (from a
                                 ///< 3-line set).

  /// Orbital period implied by the mean motion [minutes].
  double period_minutes() const { return 1440.0 / mean_motion_revs_per_day; }

  /// Semi-major axis implied by the (Kozai) mean motion [km].
  double semi_major_axis_km() const;

  /// Approximate perigee/apogee altitude above the spherical Earth [km].
  double perigee_altitude_km() const;
  double apogee_altitude_km() const;
};

/// Parses a two-line element set.  Throws std::invalid_argument with a
/// descriptive message on malformed lines, bad line numbers, disagreeing
/// catalog numbers, or checksum mismatch.
Tle parse_tle(std::string_view line1, std::string_view line2);

/// Parses a three-line element set (name line + the two element lines).
Tle parse_tle_3le(std::string_view name_line, std::string_view line1,
                  std::string_view line2);

/// Formats the elements back into the two canonical 69-column lines,
/// including correct checksums.  parse_tle(format..) round-trips.
std::string format_tle_line1(const Tle& tle);
std::string format_tle_line2(const Tle& tle);

/// NORAD checksum of one line (sum of digits, '-' counts as 1, mod 10),
/// computed over the first 68 columns.
int tle_checksum(std::string_view line);

}  // namespace dgs::orbit
