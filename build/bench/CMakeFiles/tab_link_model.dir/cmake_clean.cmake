file(REMOVE_RECURSE
  "CMakeFiles/tab_link_model.dir/tab_link_model.cpp.o"
  "CMakeFiles/tab_link_model.dir/tab_link_model.cpp.o.d"
  "tab_link_model"
  "tab_link_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_link_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
