// Small angle helpers shared by the orbit and link libraries.
#pragma once

#include <cmath>

#include "src/util/constants.h"

namespace dgs::util {

/// Degrees -> radians.
constexpr double deg2rad(double deg) { return deg * kRadPerDeg; }

/// Radians -> degrees.
constexpr double rad2deg(double rad) { return rad * kDegPerRad; }

/// Wraps an angle to [0, 2*pi).
inline double wrap_two_pi(double rad) {
  double w = std::fmod(rad, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

/// Wraps an angle to (-pi, pi].
inline double wrap_pi(double rad) {
  double w = wrap_two_pi(rad);
  if (w > kPi) w -= kTwoPi;
  return w;
}

/// Great-circle central angle between two geodetic points given in radians.
/// Uses the haversine form, stable for small separations.
inline double great_circle_angle(double lat1, double lon1, double lat2,
                                 double lon2) {
  const double sdlat = std::sin((lat2 - lat1) / 2.0);
  const double sdlon = std::sin((lon2 - lon1) / 2.0);
  const double h =
      sdlat * sdlat + std::cos(lat1) * std::cos(lat2) * sdlon * sdlon;
  return 2.0 * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace dgs::util
