// dgslint fixture: R6 - public header with no include-once guard.
inline int r6_missing_guard() { return 6; }
