// E20 — antenna slew/re-lock costs: where look-ahead planning earns its
// keep.  The per-instant matcher (the paper's scheduler) can bounce a
// station between satellites minute by minute for free in simulation, but
// real dishes pay seconds of retarget + carrier re-lock per switch.  Sweep
// the slew cost and compare against pass-block planning, which holds a
// pairing for the whole pass.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace dgs;
  using namespace dgs::bench;

  std::printf("=== E20: slew/re-lock cost vs scheduler (24 h, DGS 173) "
              "===\n\n");
  const Setup setup = make_paper_setup();
  weather::SyntheticWeatherProvider wx(kWeatherSeed, kEpoch, 25.0);

  std::printf("  %8s %-22s %11s %11s %12s %10s\n", "slew", "scheduler",
              "lat med", "lat p90", "delivered", "switches");
  for (double slew_s : {0.0, 5.0, 15.0, 30.0}) {
    for (int mode = 0; mode < 2; ++mode) {
      core::SimulationOptions opts = day_sim();
      opts.slew_seconds = slew_s;
      if (mode == 1) opts.lookahead_hours = 0.5;
      const core::SimulationResult r =
          core::Simulator(setup.sats, setup.dgs, &wx, opts).run();
      std::printf("  %6.0f s %-22s %7.1f min %7.1f min %9.1f TB %10lld\n",
                  slew_s, mode == 0 ? "per-instant" : "look-ahead 0.5 h",
                  r.latency_minutes.median(),
                  r.latency_minutes.percentile(90.0),
                  r.total_delivered_bytes / 1e12,
                  static_cast<long long>(r.slew_events));
    }
  }
  std::printf("\n  reading: the per-instant matcher re-targets ~3.7x more "
              "often; in this capacity-rich regime the lost seconds barely "
              "dent latency (it degrades ~1-2 min at 30 s slew), so the "
              "paper's per-instant choice survives realistic slew costs — "
              "the pass-holding planner's real benefit is mechanical "
              "(a quarter of the antenna movements).\n");
  return 0;
}
