# Empty dependencies file for abl_storage.
# This may be replaced when dependencies are built.
