// Synthetic weather provider: determinism, physical bounds, correlation
// structure, forecast error growth.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/angles.h"
#include "src/weather/climatology.h"
#include "src/weather/synthetic.h"

namespace dgs::weather {
namespace {

using util::deg2rad;

class SyntheticWeatherTest : public ::testing::Test {
 protected:
  SyntheticWeatherTest()
      : start_(util::DateTime{2020, 11, 4, 0, 0, 0.0}),
        wx_(42, start_, 24.0) {}
  util::Epoch start_;
  SyntheticWeatherProvider wx_;
};

TEST_F(SyntheticWeatherTest, DeterministicForSameSeed) {
  SyntheticWeatherProvider other(42, start_, 24.0);
  for (double lat : {-60.0, -5.0, 30.0, 52.0}) {
    for (double h : {0.0, 6.0, 18.0}) {
      const auto a = wx_.actual(deg2rad(lat), deg2rad(13.0),
                                start_.plus_seconds(h * 3600));
      const auto b = other.actual(deg2rad(lat), deg2rad(13.0),
                                  start_.plus_seconds(h * 3600));
      EXPECT_DOUBLE_EQ(a.rain_rate_mm_h, b.rain_rate_mm_h);
      EXPECT_DOUBLE_EQ(a.cloud_liquid_kg_m2, b.cloud_liquid_kg_m2);
    }
  }
}

TEST_F(SyntheticWeatherTest, DifferentSeedsDiffer) {
  SyntheticWeatherProvider other(43, start_, 24.0);
  int diffs = 0;
  for (double lat = -80.0; lat <= 80.0; lat += 10.0) {
    for (double lon = -170.0; lon <= 170.0; lon += 20.0) {
      const auto a = wx_.actual(deg2rad(lat), deg2rad(lon), start_);
      const auto b = other.actual(deg2rad(lat), deg2rad(lon), start_);
      if (a.cloud_liquid_kg_m2 != b.cloud_liquid_kg_m2) ++diffs;
    }
  }
  EXPECT_GT(diffs, 10);
}

TEST_F(SyntheticWeatherTest, PhysicalBoundsEverywhere) {
  for (double lat = -85.0; lat <= 85.0; lat += 8.5) {
    for (double lon = -175.0; lon <= 175.0; lon += 17.0) {
      for (double h : {0.0, 7.0, 13.0, 23.0}) {
        const auto s = wx_.actual(deg2rad(lat), deg2rad(lon),
                                  start_.plus_seconds(h * 3600));
        EXPECT_GE(s.rain_rate_mm_h, 0.0);
        EXPECT_LE(s.rain_rate_mm_h, 120.0);
        EXPECT_GE(s.cloud_liquid_kg_m2, 0.0);
        EXPECT_LE(s.cloud_liquid_kg_m2, 4.0);
      }
    }
  }
}

TEST_F(SyntheticWeatherTest, SpatialCorrelation) {
  // Points 20 km apart are much more similar than points 2000 km apart, in
  // aggregate over many probes.
  double near_diff = 0.0, far_diff = 0.0;
  int n = 0;
  for (double lat = -50.0; lat <= 50.0; lat += 5.0) {
    for (double lon = -150.0; lon <= 150.0; lon += 30.0) {
      const auto a = wx_.actual(deg2rad(lat), deg2rad(lon), start_);
      const auto b =
          wx_.actual(deg2rad(lat + 0.18), deg2rad(lon), start_);  // ~20 km
      const auto c =
          wx_.actual(deg2rad(lat + 18.0), deg2rad(lon), start_);  // ~2000 km
      near_diff += std::fabs(a.cloud_liquid_kg_m2 - b.cloud_liquid_kg_m2);
      far_diff += std::fabs(a.cloud_liquid_kg_m2 - c.cloud_liquid_kg_m2);
      ++n;
    }
  }
  EXPECT_LT(near_diff / n, far_diff / n);
}

TEST_F(SyntheticWeatherTest, TemporalCorrelation) {
  double near_diff = 0.0, far_diff = 0.0;
  int n = 0;
  for (double lat = -50.0; lat <= 50.0; lat += 10.0) {
    for (double lon = -150.0; lon <= 150.0; lon += 50.0) {
      const auto a = wx_.actual(deg2rad(lat), deg2rad(lon),
                                start_.plus_seconds(6 * 3600));
      const auto b = wx_.actual(deg2rad(lat), deg2rad(lon),
                                start_.plus_seconds(6 * 3600 + 300));
      const auto c = wx_.actual(deg2rad(lat), deg2rad(lon),
                                start_.plus_seconds(18 * 3600));
      near_diff += std::fabs(a.cloud_liquid_kg_m2 - b.cloud_liquid_kg_m2);
      far_diff += std::fabs(a.cloud_liquid_kg_m2 - c.cloud_liquid_kg_m2);
      ++n;
    }
  }
  EXPECT_LT(near_diff / n, far_diff / n);
}

TEST_F(SyntheticWeatherTest, SomeRainExistsSomewhere) {
  int rainy = 0, total = 0;
  for (double lat = -60.0; lat <= 60.0; lat += 3.0) {
    for (double lon = -180.0; lon < 180.0; lon += 6.0) {
      const auto s = wx_.actual(deg2rad(lat), deg2rad(lon),
                                start_.plus_seconds(12 * 3600));
      if (s.rain_rate_mm_h > 0.1) ++rainy;
      ++total;
    }
  }
  EXPECT_GT(rainy, 0);
  // ...but rain is localized: well under half the globe at any instant.
  EXPECT_LT(static_cast<double>(rainy) / total, 0.5);
}

TEST_F(SyntheticWeatherTest, ZeroLeadForecastMatchesActual) {
  for (double lat : {-30.0, 10.0, 48.0}) {
    const auto f = wx_.forecast(deg2rad(lat), deg2rad(5.0),
                                start_.plus_seconds(3600), 0.0);
    const auto a =
        wx_.actual(deg2rad(lat), deg2rad(5.0), start_.plus_seconds(3600));
    EXPECT_DOUBLE_EQ(f.rain_rate_mm_h, a.rain_rate_mm_h);
    EXPECT_DOUBLE_EQ(f.cloud_liquid_kg_m2, a.cloud_liquid_kg_m2);
  }
}

TEST_F(SyntheticWeatherTest, ForecastErrorGrowsWithLead) {
  double short_err = 0.0, long_err = 0.0;
  int n = 0;
  for (double lat = -50.0; lat <= 50.0; lat += 4.0) {
    for (double lon = -150.0; lon <= 150.0; lon += 25.0) {
      const util::Epoch when = start_.plus_seconds(10 * 3600);
      const auto actual = wx_.actual(deg2rad(lat), deg2rad(lon), when);
      const auto f1 = wx_.forecast(deg2rad(lat), deg2rad(lon), when, 1800.0);
      const auto f8 = wx_.forecast(deg2rad(lat), deg2rad(lon), when,
                                   8 * 3600.0);
      short_err +=
          std::fabs(f1.cloud_liquid_kg_m2 - actual.cloud_liquid_kg_m2);
      long_err +=
          std::fabs(f8.cloud_liquid_kg_m2 - actual.cloud_liquid_kg_m2);
      ++n;
    }
  }
  EXPECT_LT(short_err / n, long_err / n);
}

TEST_F(SyntheticWeatherTest, ForecastRejectsNegativeLead) {
  EXPECT_THROW(wx_.forecast(0.0, 0.0, start_, -1.0), std::invalid_argument);
}

TEST(SyntheticWeather, RejectsBadConstruction) {
  const util::Epoch start(util::DateTime{2020, 1, 1, 0, 0, 0.0});
  EXPECT_THROW(SyntheticWeatherProvider(1, start, 0.0), std::invalid_argument);
  SyntheticWeatherOptions opts;
  opts.mean_active_storms = -1;
  EXPECT_THROW(SyntheticWeatherProvider(1, start, 24.0, opts),
               std::invalid_argument);
}

TEST(Climatology, TropicsWetterThanPoles) {
  EXPECT_GT(storm_density_weight(0.0), storm_density_weight(deg2rad(80.0)));
  EXPECT_GT(typical_peak_rain_mm_h(0.0),
            typical_peak_rain_mm_h(deg2rad(70.0)));
}

TEST(Climatology, StormTracksWetterThanSubtropics) {
  EXPECT_GT(storm_density_weight(deg2rad(50.0)),
            storm_density_weight(deg2rad(18.0)));
}

TEST(Climatology, HemisphericSymmetry) {
  for (double lat : {10.0, 30.0, 50.0, 70.0}) {
    EXPECT_DOUBLE_EQ(storm_density_weight(deg2rad(lat)),
                     storm_density_weight(deg2rad(-lat)));
    EXPECT_DOUBLE_EQ(background_cloud_kg_m2(deg2rad(lat)),
                     background_cloud_kg_m2(deg2rad(-lat)));
  }
}

TEST(ClearSky, AlwaysZero) {
  ClearSkyProvider clear;
  const util::Epoch t(util::DateTime{2020, 6, 1, 0, 0, 0.0});
  const auto s = clear.actual(0.5, -1.0, t);
  EXPECT_DOUBLE_EQ(s.rain_rate_mm_h, 0.0);
  EXPECT_DOUBLE_EQ(s.cloud_liquid_kg_m2, 0.0);
}

}  // namespace
}  // namespace dgs::weather
