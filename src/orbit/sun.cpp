#include "src/orbit/sun.h"

#include <algorithm>
#include <cmath>

#include "src/util/angles.h"
#include "src/util/check.h"
#include "src/util/constants.h"

namespace dgs::orbit {

using util::Vec3;

Vec3 sun_position_km(const util::Epoch& when) {
  // Low-precision solar ephemeris (Vallado alg. 29 / Astronomical Almanac).
  const double t = (when.jd() - 2451545.0) / 36525.0;
  const double mean_lon_deg = std::fmod(280.460 + 36000.771 * t, 360.0);
  const double mean_anom_deg = std::fmod(357.5291092 + 35999.05034 * t, 360.0);
  const double m = util::deg2rad(mean_anom_deg);

  const double ecl_lon_deg = mean_lon_deg + 1.914666471 * std::sin(m) +
                             0.019994643 * std::sin(2.0 * m);
  const double ecl_lon = util::deg2rad(ecl_lon_deg);
  // Distance in astronomical units.
  const double r_au =
      1.000140612 - 0.016708617 * std::cos(m) - 0.000139589 * std::cos(2.0 * m);
  const double obliquity = util::deg2rad(23.439291 - 0.0130042 * t);

  constexpr double kAuKm = 149597870.7;
  const double r_km = r_au * kAuKm;
  return Vec3{r_km * std::cos(ecl_lon),
              r_km * std::cos(obliquity) * std::sin(ecl_lon),
              r_km * std::sin(obliquity) * std::sin(ecl_lon)};
}

SunAngles sun_angles(const Geodetic& site, const util::Epoch& when) {
  const Vec3 sun_inertial = sun_position_km(when);
  const Vec3 sun_ecef = teme_to_ecef(sun_inertial, when);
  const LookAngles la = look_angles(site, sun_ecef);
  SunAngles out;
  out.azimuth_rad = la.azimuth_rad;
  out.elevation_rad = la.elevation_rad;
  out.distance_km = sun_inertial.norm();
  return out;
}

bool sun_outage(const Geodetic& site, double look_azimuth_rad,
                double look_elevation_rad, const util::Epoch& when,
                double cone_rad) {
  DGS_ENSURE_GT(cone_rad, 0.0);
  const SunAngles sun = sun_angles(site, when);
  if (sun.elevation_rad <= 0.0) return false;  // sun below the horizon

  // Angular separation between the two (az, el) directions on the sky.
  const double cos_sep =
      std::sin(look_elevation_rad) * std::sin(sun.elevation_rad) +
      std::cos(look_elevation_rad) * std::cos(sun.elevation_rad) *
          std::cos(look_azimuth_rad - sun.azimuth_rad);
  const double sep = std::acos(std::clamp(cos_sep, -1.0, 1.0));
  return sep <= cone_rad;
}

}  // namespace dgs::orbit
