#include "src/orbit/sgp4_batch.h"

#include <cmath>

#include "src/util/check.h"

namespace dgs::orbit {

Sgp4Batch::Sgp4Batch(std::span<const Tle> tles) {
  const std::size_t n = tles.size();
#define DGS_SGP4_RESERVE(name) name##_.reserve(n);
  DGS_SGP4_PARAM_FIELDS(DGS_SGP4_RESERVE)
#undef DGS_SGP4_RESERVE
  isimp_.reserve(n);
  epochs_.reserve(n);
  for (const Tle& tle : tles) {
    const Sgp4Params p = sgp4_init(tle);
#define DGS_SGP4_PUSH(name) name##_.push_back(p.name);
    DGS_SGP4_PARAM_FIELDS(DGS_SGP4_PUSH)
#undef DGS_SGP4_PUSH
    isimp_.push_back(p.isimp ? 1 : 0);
    epochs_.push_back(tle.epoch);
  }
}

Sgp4Params Sgp4Batch::gather(std::size_t i) const {
  Sgp4Params p;
#define DGS_SGP4_GATHER(name) p.name = name##_[i];
  DGS_SGP4_PARAM_FIELDS(DGS_SGP4_GATHER)
#undef DGS_SGP4_GATHER
  p.isimp = isimp_[i] != 0;
  return p;
}

TemeState Sgp4Batch::propagate_one(int sat, const util::Epoch& when) const {
  const auto i = static_cast<std::size_t>(sat);
  return sgp4_propagate(gather(i), when.minutes_since(epochs_[i]));
}

void Sgp4Batch::positions_teme(const util::Epoch& when,
                               std::span<util::Vec3> out,
                               util::ThreadPool* pool) const {
  DGS_ENSURE_EQ(static_cast<int>(out.size()), size());
  const auto body = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t s = begin; s < end; ++s) {
      const auto i = static_cast<std::size_t>(s);
      const TemeState st =
          sgp4_propagate(gather(i), when.minutes_since(epochs_[i]));
      out[i] = st.position_km;
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(size(), body);
  } else {
    body(0, size());
  }
}

void Sgp4Batch::positions_ecef(const util::Epoch& when,
                               std::span<util::Vec3> out,
                               util::ThreadPool* pool) const {
  DGS_ENSURE_EQ(static_cast<int>(out.size()), size());
  // One GMST evaluation for the whole fleet; the rotation below is the
  // same expression orbit::teme_to_ecef applies per call.
  const double theta = util::gmst(when.jd());
  const double c = std::cos(theta), sn = std::sin(theta);
  const auto body = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t s = begin; s < end; ++s) {
      const auto i = static_cast<std::size_t>(s);
      const TemeState st =
          sgp4_propagate(gather(i), when.minutes_since(epochs_[i]));
      const util::Vec3& r = st.position_km;
      out[i] = {c * r.x + sn * r.y, -sn * r.x + c * r.y, r.z};
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(size(), body);
  } else {
    body(0, size());
  }
}

}  // namespace dgs::orbit
