# Empty compiler generated dependencies file for tab_backhaul.
# This may be replaced when dependencies are built.
