// Candidate-site pools for network design (DESIGN.md §15).
//
// The paper evaluates a hand-picked DGS(25%) subset; netdesign turns the
// "which stations should an operator actually build or rent" question into
// an optimization over a *candidate pool*: a seeded groundseg population
// annotated with the per-site economics the optimizer trades off —
// installation cost and long-run availability.  Pools are reproducible
// across tools from (pool_size, pool_seed) alone (see
// groundseg::NetworkOptions), so a front computed by dgs_netdesign names
// station ids any other CLI can replay via --stations-subset.
#pragma once

#include <vector>

#include "src/groundseg/network_gen.h"

namespace dgs::netdesign {

/// One buildable site: a groundseg station plus its economics.
struct CandidateSite {
  groundseg::GroundStation station;
  /// Abstract installation-cost units (a few tens per site).  The budget
  /// sweep and GreedyOptions::budget are expressed in the same units.
  double install_cost = 0.0;
  /// Long-run fraction of time the site is expected to be up (operator
  /// churn, §2's "best-effort" community stations).  Discounts the
  /// coverage value the optimizer credits the site with.
  double availability = 1.0;
};

/// Deterministically derives the candidate pool from `net`: stations come
/// from groundseg::generate_dgs_stations (honouring the pool_size /
/// pool_seed overrides), economics from a seeded cost model — a base
/// price, a dish-area term, a high-latitude logistics premium, a TX
/// premium, and bounded site-to-site noise; availability is drawn from
/// [0.90, 0.995).  Byte-stable for a fixed options struct.
std::vector<CandidateSite> make_candidate_pool(
    const groundseg::NetworkOptions& net);

/// The pool's stations in pool order — what the visibility engine and the
/// Simulator consume.  Pool index i holds station id pool[i].station.id.
std::vector<groundseg::GroundStation> pool_stations(
    const std::vector<CandidateSite>& pool);

}  // namespace dgs::netdesign
