// dgslint fixture: R2 — unordered iteration in an output-path file
// (src/obs/ is always an output path).
#include <string>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<std::string, int> table;

int r2_range_for() {
  int sum = 0;
  for (const auto& [k, v] : table) sum += v;  // finding: R2 iteration
  return sum;
}

int r2_begin_end() {
  int sum = 0;
  for (auto it = table.begin(); it != table.end(); ++it) {  // finding: R2
    sum += it->second;
  }
  return sum;
}

int r2_suppressed() {
  int sum = 0;
  // dgslint: allow(R2) -- fixture: fold is order-independent (sum)
  for (const auto& [k, v] : table) sum += v;
  return sum;
}

// Negative: point lookups on unordered containers are fine.
int r2_lookup(const std::string& k) { return table.at(k); }
