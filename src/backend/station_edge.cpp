#include "src/backend/station_edge.h"

#include <algorithm>

#include "src/util/check.h"

namespace dgs::backend {

StationEdgeQueue::StationEdgeQueue(double backhaul_bps)
    : backhaul_bps_(backhaul_bps) {
  DGS_ENSURE_GT(backhaul_bps, 0.0);
}

void StationEdgeQueue::receive(double bytes, double priority,
                               const util::Epoch& capture,
                               const util::Epoch& ground_rx) {
  DGS_ENSURE(bytes >= 0.0 && priority >= 0.0,
             "bytes=" << bytes << ", priority=" << priority);
  if (bytes == 0.0) return;
  EdgeItem item{capture, ground_rx, bytes, bytes, priority};
  // Strict priority, FIFO within a class; fast path appends at the back.
  auto before = [](const EdgeItem& a, const EdgeItem& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.ground_rx < b.ground_rx;
  };
  if (items_.empty() || !before(item, items_.back())) {
    items_.push_back(std::move(item));
  } else {
    const auto it = std::find_if(
        items_.begin(), items_.end(),
        [&](const EdgeItem& e) { return before(item, e); });
    items_.insert(it, std::move(item));
  }
  queued_bytes_ += bytes;
  if (received_bytes_metric_ != nullptr) received_bytes_metric_->inc(bytes);
}

double StationEdgeQueue::drain(double dt_seconds, const util::Epoch& now,
                               const CloudArrivalCallback& on_cloud_arrival,
                               double rate_multiplier) {
  DGS_ENSURE_GE(dt_seconds, 0.0);
  DGS_ENSURE_GE(rate_multiplier, 0.0);
  double budget = backhaul_bps_ * rate_multiplier * dt_seconds / 8.0;
  double uploaded = 0.0;
  while (budget > 0.0 && !items_.empty()) {
    EdgeItem& item = items_.front();
    const double take = std::min(budget, item.remaining_bytes);
    item.remaining_bytes -= take;
    budget -= take;
    uploaded += take;
    if (item.remaining_bytes <= 0.0) {
      if (on_cloud_arrival) {
        on_cloud_arrival(now.seconds_since(item.capture), item);
      }
      items_.pop_front();
    }
  }
  queued_bytes_ -= uploaded;
  if (queued_bytes_ < 0.0) queued_bytes_ = 0.0;
  if (uploaded_bytes_metric_ != nullptr && uploaded > 0.0) {
    uploaded_bytes_metric_->inc(uploaded);
  }
  return uploaded;
}

}  // namespace dgs::backend
