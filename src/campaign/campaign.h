// Monte-Carlo campaign runner (DESIGN.md §12).
//
// PR 5's fault profiles define a whole distribution of failure scenarios;
// a single simulation is one sample from it.  This module turns the
// robustness claim into statistics: it shards N (fault-seed, profile,
// scenario) samples across worker *processes*, harvests each run's
// summary-JSON / metrics / events artifacts (the run_artifact.h
// contract), and aggregates 95% confidence intervals on backlog,
// latency, and lost bytes — "storm: p99 latency 143±12 min over 200
// seeds" instead of an anecdote.
//
// Determinism and resume are both anchored on the filesystem layout:
//
//   <out_dir>/manifest.json                 campaign identity (validated
//                                           against re-invocations)
//   <out_dir>/samples/sample_0007/summary.json   the done marker
//                                 metrics.txt    per-run obs snapshot
//                                 events.jsonl   fault/contact ledger
//   <out_dir>/aggregate.json                cross-sample statistics
//   <out_dir>/campaign_metrics.txt          folded obs counters
//
// Sample i's fault seed is faults::campaign_sample_seed(campaign_seed, i)
// — a pure function, so shard assignment, worker count, and completion
// order cannot change any sample's scenario.  A sample is "done" iff its
// summary.json exists and passes schema validation (artifacts are written
// to a temp name and renamed, so a killed worker never leaves a valid
// half-artifact); rerunning a campaign recomputes exactly the samples
// that are not done.  Aggregation reads samples in index order, so the
// aggregate is byte-identical for any worker count and across resumes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/core/run_artifact.h"
#include "src/core/simulator.h"

namespace dgs::campaign {

struct CampaignOptions {
  /// Fault profile name (src/faults/profiles.h) sampled by the campaign.
  std::string profile = "storm";
  /// Root seed; sample i runs under campaign_sample_seed(seed, i).
  std::uint64_t campaign_seed = 1;
  int samples = 64;
  /// Worker processes (forked); 1 runs in-process, 0 = hardware threads.
  int workers = 1;
  std::string out_dir = "campaign_out";
  /// Scenario: one synthetic constellation/network shared by all samples
  /// (the fault seed is the sampled axis; weather and geometry are held
  /// fixed so the CI measures fault variance, not scenario variance).
  double duration_hours = 6.0;
  double step_seconds = 60.0;
  int num_satellites = 8;
  int num_stations = 15;
  std::uint64_t network_seed = 13;
  std::uint64_t weather_seed = 42;
  /// Per-sample artifact sinks; summary.json is always written.
  bool write_metrics = true;
  bool write_events = true;

  /// Constraint check in the SimulationOptions::validate() style.
  std::optional<core::OptionsError> validate() const;
};

/// One aggregated campaign metric: moments and order statistics of the
/// per-sample scalar, plus the 95% normal-approximation CI half-width of
/// the mean (1.96 * sd / sqrt(count)).
struct MetricAggregate {
  double mean = 0.0;
  double sd = 0.0;
  double ci95 = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::int64_t count = 0;  ///< Samples that carried this metric.
};

struct CampaignResult {
  int samples = 0;   ///< Total samples in the campaign.
  int reused = 0;    ///< Found done (valid artifacts) and skipped.
  int computed = 0;  ///< Run by this invocation.
  /// (metric name, aggregate) in emission order — the aggregate.json body.
  std::vector<std::pair<std::string, MetricAggregate>> metrics;
};

/// Paths inside the campaign directory.
std::string sample_dir(const CampaignOptions& opts, int sample_index);
std::string manifest_path(const CampaignOptions& opts);
std::string aggregate_path(const CampaignOptions& opts);

/// Runs one sample in-process and atomically writes its artifacts.
/// Deterministic: (options identity, sample_index) fixes every byte.
void run_sample(const CampaignOptions& opts, int sample_index);

/// The full driver: writes/validates the manifest, scans for done
/// samples, shards the pending ones across `workers` forked processes,
/// then aggregates all sample summaries into aggregate.json and folds
/// per-run metric snapshots into campaign_metrics.txt.  `log` (may be
/// null) receives one-line progress notes.  Throws std::runtime_error on
/// an incompatible manifest or a failed worker.
CampaignResult run_campaign(const CampaignOptions& opts,
                            std::ostream* log = nullptr);

/// Revalidates a campaign directory end to end: manifest, every done
/// sample's summary (and events, when present), and the aggregate.
/// Returns the first violation, or nullopt when the directory honours
/// the schema.
std::optional<core::ArtifactError> validate_campaign_dir(
    const std::string& dir);

}  // namespace dgs::campaign
