// Minimal JSON helpers for tests: a full-document syntax validator plus
// field extraction for the flat one-line objects the event log emits,
// and wrappers hooking the run-artifact schema validators
// (src/core/run_artifact.h) into EXPECT-style assertions.
// Inputs must be backed by NUL-terminated buffers (std::string contents) —
// number scanning uses strtod, which may read past a raw view otherwise.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>

#include "src/core/run_artifact.h"

namespace dgs::testing {

namespace json_detail {

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  bool done() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!done() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
};

inline bool parse_value(Cursor& c);

inline bool parse_string(Cursor& c) {
  if (c.done() || c.peek() != '"') return false;
  ++c.i;
  while (!c.done()) {
    const char ch = c.s[c.i++];
    if (ch == '\\') {
      if (c.done()) return false;
      ++c.i;
      continue;
    }
    if (ch == '"') return true;
  }
  return false;
}

inline bool parse_number(Cursor& c) {
  const char* begin = c.s.data() + c.i;
  char* end = nullptr;
  static_cast<void>(std::strtod(begin, &end));
  if (end == begin) return false;
  c.i += static_cast<std::size_t>(end - begin);
  return true;
}

inline bool parse_literal(Cursor& c, std::string_view lit) {
  if (c.s.substr(c.i, lit.size()) != lit) return false;
  c.i += lit.size();
  return true;
}

inline bool parse_object(Cursor& c) {
  ++c.i;  // consumes '{'
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.i;
    return true;
  }
  while (true) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (c.done() || c.peek() != ':') return false;
    ++c.i;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.done()) return false;
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == '}') {
      ++c.i;
      return true;
    }
    return false;
  }
}

inline bool parse_array(Cursor& c) {
  ++c.i;  // consumes '['
  c.skip_ws();
  if (!c.done() && c.peek() == ']') {
    ++c.i;
    return true;
  }
  while (true) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.done()) return false;
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == ']') {
      ++c.i;
      return true;
    }
    return false;
  }
}

inline bool parse_value(Cursor& c) {
  c.skip_ws();
  if (c.done()) return false;
  switch (c.peek()) {
    case '{': return parse_object(c);
    case '[': return parse_array(c);
    case '"': return parse_string(c);
    case 't': return parse_literal(c, "true");
    case 'f': return parse_literal(c, "false");
    case 'n': return parse_literal(c, "null");
    default: return parse_number(c);
  }
}

}  // namespace json_detail

/// True when `text` is exactly one syntactically valid JSON value.
inline bool json_valid(std::string_view text) {
  json_detail::Cursor c{text};
  if (!json_detail::parse_value(c)) return false;
  c.skip_ws();
  return c.done();
}

/// Extracts `"key": <number>` from a flat one-line JSON object.
inline bool json_number_field(std::string_view line, std::string_view key,
                              double* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  const char* begin = line.data() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  *out = v;
  return true;
}

/// Extracts `"key": "<text>"` (no escape handling; test data is ASCII).
inline bool json_string_field(std::string_view line, std::string_view key,
                              std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\": \"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t close = line.find('"', start);
  if (close == std::string_view::npos) return false;
  *out = std::string(line.substr(start, close - start));
  return true;
}

// --- Run-artifact schema hookup (the single contract every summary /
// timeseries / event artifact honours; see run_artifact.h) ------------------

/// Renders an ArtifactError for assertion messages.
inline std::string artifact_error_text(
    const std::optional<dgs::core::ArtifactError>& e) {
  return e ? e->where + ": " + e->message : std::string("ok");
}

/// True iff `text` is a schema-valid summary JSON at the pinned
/// kRunArtifactSchemaVersion; fills `why` (may be null) on failure.
inline bool summary_schema_valid(std::string_view text,
                                 std::string* why = nullptr) {
  const auto e = dgs::core::validate_summary_json(text);
  if (e && why != nullptr) *why = artifact_error_text(e);
  return !e;
}

/// Same for the timeseries CSV artifact.
inline bool timeseries_schema_valid(std::string_view text,
                                    std::string* why = nullptr) {
  const auto e = dgs::core::validate_timeseries_csv(text);
  if (e && why != nullptr) *why = artifact_error_text(e);
  return !e;
}

/// Same for the JSONL event log artifact.
inline bool events_schema_valid(std::string_view text,
                                std::string* why = nullptr) {
  const auto e = dgs::core::validate_events_jsonl(text);
  if (e && why != nullptr) *why = artifact_error_text(e);
  return !e;
}

}  // namespace dgs::testing
