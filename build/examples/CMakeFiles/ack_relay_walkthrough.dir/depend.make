# Empty dependencies file for ack_relay_walkthrough.
# This may be replaced when dependencies are built.
