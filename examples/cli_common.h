// Shared command-line flag handling for the dgs_* front ends (dgs_cli,
// dgs_campaign, dgs_netdesign, dgs_serve).
//
// Each binary keeps its own subcommand and positional parsing; the flags
// every front end repeats — threading, fault injection, station subsets,
// artifact output paths — live here so spellings and semantics cannot
// drift between tools.  A binary opts in per flag: parse_common_flag()
// consumes only the shared spellings and leaves everything else to the
// caller's own loop.
#ifndef DGS_EXAMPLES_CLI_COMMON_H_
#define DGS_EXAMPLES_CLI_COMMON_H_

#include <cstdint>
#include <string>

#include "src/core/simulator.h"

namespace dgs::examples {

/// Values of the shared flags, pre-filled with their defaults.
struct CommonFlags {
  int threads = 1;                     ///< --threads <n>
  std::string fault_profile = "none";  ///< --fault-profile <name>
  std::uint64_t fault_seed = 1;        ///< --fault-seed <n>
  std::string stations_subset;         ///< --stations-subset <file>
  std::string json_out;                ///< --json <file>
  std::string csv_out;                 ///< --csv <file>
  std::string metrics_out;             ///< --metrics-out <file>
  std::string events_out;              ///< --events-out <file>
  std::string trace_out;               ///< --trace-out <file>
};

/// Returns argv[*i + 1] and advances *i when a value is present, else
/// nullptr.  The building block for "--flag <value>" parsing.
const char* flag_value(int argc, char** argv, int* i);

/// Consumes argv[*i] if it spells one of the shared flags, advancing *i
/// past the flag's value.  Returns true when consumed.
bool parse_common_flag(int argc, char** argv, int* i, CommonFlags* flags);

/// Usage fragment listing the shared flags, one per indented line.
const char* common_flags_usage();

/// Applies the shared flags to SimulationOptions: thread count, the
/// station subset (loaded from --stations-subset), and the fault profile
/// instantiated against the effective (post-subset) station count, with
/// the modelled backhaul enabled when the profile degrades it.  Returns
/// the effective station count.  Throws on an unknown profile name or an
/// unreadable subset file.
int apply_common_flags(const CommonFlags& flags, int num_stations,
                       core::SimulationOptions* opts);

}  // namespace dgs::examples

#endif  // DGS_EXAMPLES_CLI_COMMON_H_
