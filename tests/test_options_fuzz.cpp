// Property test for SimulationOptions::validate() (satellite of the
// campaign PR): ~200 seeded random corruptions of a valid option set.
// Properties checked for every corruption:
//   1. every OptionsError.field names a real field (a fixed registry of
//      known names, with [N] indices normalized),
//   2. clamping exactly the named field and re-validating converges to
//      nullopt in a bounded number of rounds — i.e. validate() never
//      blames an innocent field and never reports a phantom constraint.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/core/simulator.h"
#include "src/faults/fault_rng.h"

namespace dgs::core {
namespace {

constexpr int kNumStations = 10;
constexpr int kMaxRepairRounds = 32;

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});

SimulationOptions valid_baseline() {
  SimulationOptions o;
  o.start = kT0;
  o.duration_hours = 6.0;
  o.step_seconds = 60.0;
  return o;
}

/// Every field name validate() may legitimately report, with bracketed
/// indices normalized to [*].  A name outside this set is a test failure:
/// either validate() invented a field or a rename went unmirrored here.
const std::set<std::string>& known_fields() {
  static const std::set<std::string> kFields = {
      "duration_hours",
      "step_seconds",
      "lookahead_hours",
      "urgent_fraction",
      "urgent_priority",
      "initial_backlog_bytes",
      "station_backhaul_bps",
      "slew_seconds",
      "parallel.num_threads",
      "parallel.chunk_size",
      "faults.outages[*].station_index",
      "faults.outages[*].end_hours",
      "faults.churn.mtbf_hours",
      "faults.churn.mttr_hours",
      "faults.churn.station_fraction",
      "faults.backhaul",
      "faults.backhaul[*].station_index",
      "faults.backhaul[*].end_hours",
      "faults.backhaul[*].rate_multiplier",
      "faults.ack_relay.loss_probability",
      "faults.ack_relay.initial_backoff_s",
      "faults.ack_relay.backoff_multiplier",
      "faults.ack_relay.max_backoff_s",
      "faults.ack_relay.max_attempts",
      "faults.plan_upload.failure_probability",
      "tenants",
      "tenants[*].name",
      "tenants[*].weight",
      "tenants[*].sla_latency_minutes",
      "tenants[*].satellites",
      "tenants[*].satellites[*]",
  };
  return kFields;
}

/// "faults.backhaul[3].end_hours" -> "faults.backhaul[*].end_hours".
std::string normalize(const std::string& field) {
  std::string out;
  for (std::size_t i = 0; i < field.size(); ++i) {
    out += field[i];
    if (field[i] == '[') {
      out += '*';
      while (i + 1 < field.size() && field[i + 1] != ']') ++i;
    }
  }
  return out;
}

/// Index inside the first [N] of a field path, or -1.
int bracket_index(const std::string& field) {
  const std::size_t open = field.find('[');
  if (open == std::string::npos) return -1;
  return std::atoi(field.c_str() + open + 1);
}

/// Clamps exactly the named field to a valid value.  Returns false for an
/// unknown name (the property-violation case).
bool repair(SimulationOptions& o, const std::string& field) {
  const std::string norm = normalize(field);
  const int i = bracket_index(field);
  if (norm == "duration_hours") {
    o.duration_hours = 6.0;
  } else if (norm == "step_seconds") {
    o.step_seconds = 60.0;
  } else if (norm == "lookahead_hours") {
    o.lookahead_hours = 0.0;
  } else if (norm == "urgent_fraction") {
    o.urgent_fraction = 0.5;
  } else if (norm == "urgent_priority") {
    o.urgent_priority = 8.0;
  } else if (norm == "initial_backlog_bytes") {
    o.initial_backlog_bytes = 0.0;
  } else if (norm == "station_backhaul_bps") {
    o.station_backhaul_bps = 50e6;
  } else if (norm == "slew_seconds") {
    o.slew_seconds = 0.0;
  } else if (norm == "parallel.num_threads") {
    o.parallel.num_threads = 1;
  } else if (norm == "parallel.chunk_size") {
    o.parallel.chunk_size = 64;
  } else if (norm == "faults.outages[*].station_index") {
    o.faults.outages.at(static_cast<std::size_t>(i)).station_index = 0;
  } else if (norm == "faults.outages[*].end_hours") {
    auto& w = o.faults.outages.at(static_cast<std::size_t>(i));
    w.end_hours = w.start_hours + 1.0;
  } else if (norm == "faults.churn.mtbf_hours") {
    o.faults.churn.mtbf_hours = 0.0;
  } else if (norm == "faults.churn.mttr_hours") {
    o.faults.churn.mttr_hours = 1.0;
  } else if (norm == "faults.churn.station_fraction") {
    o.faults.churn.station_fraction = 1.0;
  } else if (norm == "faults.backhaul") {
    o.faults.backhaul.clear();
  } else if (norm == "faults.backhaul[*].station_index") {
    o.faults.backhaul.at(static_cast<std::size_t>(i)).station_index = 0;
  } else if (norm == "faults.backhaul[*].end_hours") {
    auto& f = o.faults.backhaul.at(static_cast<std::size_t>(i));
    f.end_hours = f.start_hours + 1.0;
  } else if (norm == "faults.backhaul[*].rate_multiplier") {
    o.faults.backhaul.at(static_cast<std::size_t>(i)).rate_multiplier =
        0.5;
  } else if (norm == "faults.ack_relay.loss_probability") {
    o.faults.ack_relay.loss_probability = 0.0;
  } else if (norm == "faults.ack_relay.initial_backoff_s") {
    o.faults.ack_relay.initial_backoff_s = 60.0;
  } else if (norm == "faults.ack_relay.backoff_multiplier") {
    o.faults.ack_relay.backoff_multiplier = 2.0;
  } else if (norm == "faults.ack_relay.max_backoff_s") {
    o.faults.ack_relay.max_backoff_s =
        std::max(1800.0, o.faults.ack_relay.initial_backoff_s);
  } else if (norm == "faults.ack_relay.max_attempts") {
    o.faults.ack_relay.max_attempts = 16;
  } else if (norm == "faults.plan_upload.failure_probability") {
    o.faults.plan_upload.failure_probability = 0.0;
  } else if (norm == "tenants") {
    o.tenants.clear();
  } else if (norm == "tenants[*].name") {
    o.tenants.at(static_cast<std::size_t>(i)).name =
        "t" + std::to_string(i);
  } else if (norm == "tenants[*].weight") {
    o.tenants.at(static_cast<std::size_t>(i)).weight = 1.0;
  } else if (norm == "tenants[*].sla_latency_minutes") {
    o.tenants.at(static_cast<std::size_t>(i)).sla_latency_minutes = 0.0;
  } else if (norm == "tenants[*].satellites") {
    o.tenants.at(static_cast<std::size_t>(i)).satellites = {100 + i};
  } else if (norm == "tenants[*].satellites[*]") {
    o.tenants.at(static_cast<std::size_t>(i)).satellites = {200 + i};
  } else {
    return false;
  }
  return true;
}

/// One corruption: a targeted way to make the options invalid.  Several
/// may be applied to the same option set in one fuzz iteration.
using Corruption = std::function<void(SimulationOptions&, faults::Pcg32&)>;

double bad_negative(faults::Pcg32& rng) {
  return -(rng.uniform() * 100.0 + 0.001);
}

const std::vector<Corruption>& corruptions() {
  static const std::vector<Corruption> kTable = {
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.duration_hours = rng.next() % 2 == 0 ? 0.0 : bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.step_seconds = rng.next() % 2 == 0 ? 0.0 : bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.lookahead_hours = bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.urgent_fraction =
            rng.next() % 2 == 0 ? 1.0 + rng.uniform() : bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.urgent_fraction = 0.5;
        o.urgent_priority = rng.next() % 2 == 0 ? 0.0 : bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.initial_backlog_bytes = bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.station_backhaul_bps = bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.slew_seconds = bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.parallel.num_threads = -1 - static_cast<int>(rng.next() % 8);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.parallel.chunk_size = -static_cast<int>(rng.next() % 2);
      },
      [](SimulationOptions& o, faults::Pcg32&) {
        // Invalid tenant name (uppercase + punctuation).  The satellite
        // slice is keyed off the current tenant count so repeated
        // applications stay disjoint and the *name* is the one error.
        TenantSpec t;
        t.name = "Tenant!" + std::to_string(o.tenants.size());
        t.satellites = {static_cast<int>(o.tenants.size())};
        o.tenants.push_back(std::move(t));
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        TenantSpec t;
        t.name = "badweight" + std::to_string(o.tenants.size());
        t.satellites = {static_cast<int>(o.tenants.size())};
        t.weight = rng.next() % 2 == 0 ? 0.0 : bad_negative(rng);
        o.tenants.push_back(std::move(t));
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.outages.push_back(
            {-1 - static_cast<int>(rng.next() % 3), 1.0, 2.0});
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.outages.push_back({0, 3.0, 3.0 - rng.uniform() - 0.001});
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.churn.mtbf_hours = bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32&) {
        o.faults.churn.mtbf_hours = 12.0;
        o.faults.churn.mttr_hours = 0.0;
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.churn.station_fraction = 1.0 + rng.uniform() + 0.001;
      },
      [](SimulationOptions& o, faults::Pcg32&) {
        // Backhaul fault with no backhaul model: the whole-field error.
        o.station_backhaul_bps = 0.0;
        o.faults.backhaul.push_back({0, 1.0, 2.0, 0.5});
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.station_backhaul_bps = 50e6;
        o.faults.backhaul.push_back({0, 1.0, 2.0, 1.0 + rng.uniform()});
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.station_backhaul_bps = 50e6;
        o.faults.backhaul.push_back(
            {kNumStations + static_cast<int>(rng.next() % 5), 1.0, 2.0,
             0.5});
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.ack_relay.loss_probability =
            rng.next() % 2 == 0 ? 1.0 + rng.uniform() : bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.ack_relay.loss_probability = 0.5;
        o.faults.ack_relay.initial_backoff_s =
            rng.next() % 2 == 0 ? 0.0 : bad_negative(rng);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.ack_relay.loss_probability = 0.5;
        o.faults.ack_relay.backoff_multiplier = rng.uniform();
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.ack_relay.loss_probability = 0.5;
        o.faults.ack_relay.max_backoff_s =
            o.faults.ack_relay.initial_backoff_s * rng.uniform() - 1.0;
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.ack_relay.loss_probability = 0.5;
        o.faults.ack_relay.max_attempts = -static_cast<int>(rng.next() % 2);
      },
      [](SimulationOptions& o, faults::Pcg32& rng) {
        o.faults.plan_upload.failure_probability = 1.0 + rng.uniform();
      },
  };
  return kTable;
}

TEST(OptionsFuzz, BaselineIsValid) {
  EXPECT_FALSE(valid_baseline().validate(kNumStations).has_value());
}

// Deterministic coverage: each corruption, applied alone, must produce
// an error naming a registry field with a non-empty message.
TEST(OptionsFuzz, EveryCorruptionNamesAKnownField) {
  for (std::size_t c = 0; c < corruptions().size(); ++c) {
    faults::Pcg32 rng(1000 + c);
    SimulationOptions o = valid_baseline();
    corruptions()[c](o, rng);
    const auto e = o.validate(kNumStations);
    ASSERT_TRUE(e.has_value()) << "corruption " << c << " was a no-op";
    EXPECT_TRUE(known_fields().count(normalize(e->field)))
        << "corruption " << c << " named unknown field: " << e->field;
    EXPECT_FALSE(e->message.empty()) << e->field;
  }
}

// The fuzz property: random 1-3 corruption combos; every reported field
// is known; repairing exactly the named field converges.
TEST(OptionsFuzz, RandomCorruptionsAreRepairableByNamedField) {
  faults::Pcg32 rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    SimulationOptions o = valid_baseline();
    const int n = 1 + static_cast<int>(rng.next() % 3);
    for (int k = 0; k < n; ++k) {
      corruptions()[rng.next() % corruptions().size()](o, rng);
    }
    int rounds = 0;
    while (const auto e = o.validate(kNumStations)) {
      ASSERT_LT(rounds++, kMaxRepairRounds)
          << "iter " << iter << " did not converge; last field " << e->field;
      ASSERT_TRUE(known_fields().count(normalize(e->field)))
          << "iter " << iter << " unknown field: " << e->field;
      ASSERT_FALSE(e->message.empty()) << e->field;
      ASSERT_TRUE(repair(o, e->field))
          << "iter " << iter << " unrepairable field: " << e->field;
    }
    EXPECT_FALSE(o.validate(kNumStations).has_value());
  }
}

// Out-of-range station indices are only a constraint when the network
// size is known; num_stations = -1 must skip them (pre-network check).
TEST(OptionsFuzz, StationBoundsSkippedWithoutNetwork) {
  SimulationOptions o = valid_baseline();
  o.faults.outages.push_back({kNumStations + 3, 1.0, 2.0});
  EXPECT_TRUE(o.validate(kNumStations).has_value());
  EXPECT_FALSE(o.validate(-1).has_value());
}

}  // namespace
}  // namespace dgs::core
