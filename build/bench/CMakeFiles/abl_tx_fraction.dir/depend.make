# Empty dependencies file for abl_tx_fraction.
# This may be replaced when dependencies are built.
