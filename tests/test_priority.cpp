// Priority tiers: queue ordering, SLA-weighted value, and end-to-end
// urgent-tier latency in the simulator (paper §3.1 SLA weighting and §3.3
// edge-compute prioritization).
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/simulator.h"
#include "src/core/value.h"

namespace dgs::core {
namespace {

const util::Epoch kT0(util::DateTime{2020, 11, 4, 0, 0, 0.0});
constexpr double kGb = 1e9;

TEST(PriorityQueueOrder, UrgentJumpsAheadOfBulk) {
  OnboardQueue q;
  q.generate(100.0, kT0);                          // bulk, old
  q.generate(100.0, kT0.plus_seconds(600), 8.0);   // urgent, new
  std::vector<double> priorities;
  q.transmit(100.0, kT0.plus_seconds(1200), [&](double, const DataChunk& c) {
    priorities.push_back(c.priority);
  });
  ASSERT_EQ(priorities.size(), 1u);
  EXPECT_DOUBLE_EQ(priorities[0], 8.0);  // urgent went first despite age
}

TEST(PriorityQueueOrder, FifoWithinSamePriority) {
  OnboardQueue q;
  q.generate(50.0, kT0, 2.0);
  q.generate(50.0, kT0.plus_seconds(60), 2.0);
  q.generate(50.0, kT0.plus_seconds(120), 2.0);
  std::vector<double> latencies;
  q.transmit(150.0, kT0.plus_seconds(300),
             [&](double lat, const DataChunk&) { latencies.push_back(lat); });
  ASSERT_EQ(latencies.size(), 3u);
  EXPECT_GT(latencies[0], latencies[1]);
  EXPECT_GT(latencies[1], latencies[2]);
}

TEST(PriorityQueueOrder, ThreeTierServiceOrder) {
  OnboardQueue q;
  q.generate(10.0, kT0, 1.0);
  q.generate(10.0, kT0.plus_seconds(10), 5.0);
  q.generate(10.0, kT0.plus_seconds(20), 3.0);
  q.generate(10.0, kT0.plus_seconds(30), 5.0);
  std::vector<double> order;
  q.transmit(40.0, kT0.plus_seconds(60),
             [&](double, const DataChunk& c) { order.push_back(c.priority); });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_DOUBLE_EQ(order[0], 5.0);
  EXPECT_DOUBLE_EQ(order[1], 5.0);
  EXPECT_DOUBLE_EQ(order[2], 3.0);
  EXPECT_DOUBLE_EQ(order[3], 1.0);
}

TEST(PriorityQueueOrder, RejectsNegativePriority) {
  OnboardQueue q;
  EXPECT_THROW(q.generate(1.0, kT0, -1.0), std::invalid_argument);
}

TEST(PriorityValue, UrgentDataRaisesEdgeValue) {
  OnboardQueue bulk, urgent;
  bulk.generate(1.0 * kGb, kT0, 1.0);
  urgent.generate(1.0 * kGb, kT0, 8.0);
  LatencyValue phi;
  const util::Epoch now = kT0.plus_seconds(600);
  EXPECT_NEAR(phi.edge_value(urgent, now, kGb),
              8.0 * phi.edge_value(bulk, now, kGb), 1e-9);
}

TEST(PriorityValue, FreshUrgentDataStillHasValue) {
  OnboardQueue q;
  q.generate(1.0 * kGb, kT0, 8.0);
  LatencyValue phi;
  // Age ~0 but value must be positive so the scheduler can react.
  EXPECT_GT(phi.edge_value(q, kT0, kGb), 0.0);
}

TEST(PrioritySimulation, UrgentTierGetsLowerLatency) {
  groundseg::NetworkOptions net;
  net.num_stations = 40;
  net.num_satellites = 30;
  net.seed = 3;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);

  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 8.0;
  opts.step_seconds = 60.0;
  opts.urgent_fraction = 0.05;
  opts.urgent_priority = 8.0;

  const SimulationResult r =
      Simulator(sats, stations, nullptr, opts).run();
  ASSERT_FALSE(r.urgent_latency_minutes.empty());
  ASSERT_FALSE(r.bulk_latency_minutes.empty());
  // The urgent tier must beat bulk at the median and the tail.
  EXPECT_LE(r.urgent_latency_minutes.median(),
            r.bulk_latency_minutes.median());
  EXPECT_LE(r.urgent_latency_minutes.percentile(90.0),
            r.bulk_latency_minutes.percentile(90.0));
}

TEST(PrioritySimulation, NoTierMeansNoUrgentSamples) {
  groundseg::NetworkOptions net;
  net.num_stations = 15;
  net.num_satellites = 8;
  const auto sats = groundseg::generate_constellation(net, kT0);
  const auto stations = groundseg::generate_dgs_stations(net);
  SimulationOptions opts;
  opts.start = kT0;
  opts.duration_hours = 4.0;
  const SimulationResult r =
      Simulator(sats, stations, nullptr, opts).run();
  EXPECT_TRUE(r.urgent_latency_minutes.empty());
  EXPECT_EQ(r.bulk_latency_minutes.size(), r.latency_minutes.size());
}

}  // namespace
}  // namespace dgs::core
